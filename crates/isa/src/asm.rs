//! Two-pass programmatic assembler.
//!
//! [`Asm`] accumulates instructions, labels and data segments, then
//! [`Asm::assemble`] resolves label references and produces a [`Program`].
//! Workload generators build their kernels through this interface.

use crate::encode::encode;
use crate::inst::{Inst, Op};
use crate::program::Program;
use crate::reg::Reg;
use crate::{DEFAULT_CODE_BASE, INST_BYTES};
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch target is too far away for its 16-bit word offset.
    BranchOutOfRange {
        /// Label that could not be reached.
        label: String,
        /// Offset in words that did not fit.
        offset: i64,
    },
    /// An immediate operand does not fit its encoding field.
    ImmediateOutOfRange {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
        /// The unencodable value.
        value: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset} words)")
            }
            AsmError::ImmediateOutOfRange { mnemonic, value } => {
                write!(f, "immediate {value} out of range for `{mnemonic}`")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// A pending label reference in an instruction's immediate field.
#[derive(Clone, Debug)]
enum Target {
    /// Immediate already resolved (numeric offset or plain immediate).
    Done,
    /// PC-relative reference to a label (branches, `j`, `jal`).
    Label(String),
}

/// The programmatic assembler.
///
/// See the [crate-level example](crate) for basic use. All emit methods
/// append one instruction; [`Asm::label`] attaches a label to the *next*
/// instruction address; [`Asm::data`]/[`Asm::data_words`] register initial
/// data segments.
#[derive(Clone, Debug, Default)]
pub struct Asm {
    base: u32,
    insts: Vec<(Inst, Target)>,
    labels: HashMap<String, u32>,
    data: Vec<(u32, Vec<u8>)>,
    error: Option<AsmError>,
}

impl Asm {
    /// Creates an assembler placing code at [`DEFAULT_CODE_BASE`].
    pub fn new() -> Asm {
        Asm::with_base(DEFAULT_CODE_BASE)
    }

    /// Creates an assembler placing code at the given base address.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn with_base(base: u32) -> Asm {
        assert!(base.is_multiple_of(INST_BYTES), "code base must be word aligned");
        Asm { base, ..Asm::default() }
    }

    /// Address the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + self.insts.len() as u32 * INST_BYTES
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `name` as the address of the next instruction.
    ///
    /// Duplicate definitions are reported by [`Asm::assemble`].
    pub fn label(&mut self, name: &str) -> &mut Asm {
        if self.labels.insert(name.to_string(), self.here()).is_some() && self.error.is_none() {
            self.error = Some(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Registers an initial data segment of raw bytes at `addr`.
    pub fn data(&mut self, addr: u32, bytes: &[u8]) -> &mut Asm {
        self.data.push((addr, bytes.to_vec()));
        self
    }

    /// Registers an initial data segment of little-endian 32-bit words.
    pub fn data_words(&mut self, addr: u32, words: &[u32]) -> &mut Asm {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data(addr, &bytes)
    }

    /// Registers an initial data segment of 64-bit floats.
    pub fn data_f64(&mut self, addr: u32, values: &[f64]) -> &mut Asm {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.data(addr, &bytes)
    }

    fn emit(&mut self, inst: Inst) -> &mut Asm {
        self.insts.push((inst, Target::Done));
        self
    }

    fn emit_to(&mut self, inst: Inst, label: &str) -> &mut Asm {
        self.insts.push((inst, Target::Label(label.to_string())));
        self
    }

    fn check_imm16(&mut self, mnemonic: &'static str, v: i32) -> i32 {
        if !(-(1 << 15)..(1 << 15)).contains(&v) && self.error.is_none() {
            self.error = Some(AsmError::ImmediateOutOfRange { mnemonic, value: v as i64 });
        }
        v.clamp(-(1 << 15), (1 << 15) - 1)
    }

    fn check_imm16u(&mut self, mnemonic: &'static str, v: i32) -> i32 {
        if !(0..=0xffff).contains(&v) && self.error.is_none() {
            self.error = Some(AsmError::ImmediateOutOfRange { mnemonic, value: v as i64 });
        }
        v.clamp(0, 0xffff)
    }

    // --- Integer register-register -------------------------------------

    /// Emits a register-register integer instruction of the given `op`.
    pub fn rrr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.emit(Inst { op, rd: rd.index(), rs1: rs1.index(), rs2: rs2.index(), imm: 0 })
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Add, rd, rs1, rs2)
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Sub, rd, rs1, rs2)
    }
    /// `rd = rs1 * rs2` (multi-cycle in the timing model)
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Mul, rd, rs1, rs2)
    }
    /// `rd = rs1 / rs2` signed; division by zero yields 0 (34-cycle class)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Div, rd, rs1, rs2)
    }
    /// `rd = rs1 % rs2` signed; modulo by zero yields 0
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Rem, rd, rs1, rs2)
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::And, rd, rs1, rs2)
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Or, rd, rs1, rs2)
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Xor, rd, rs1, rs2)
    }
    /// `rd = rs1 << (rs2 & 31)`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Sll, rd, rs1, rs2)
    }
    /// `rd = rs1 >> (rs2 & 31)` logical
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Srl, rd, rs1, rs2)
    }
    /// `rd = rs1 >> (rs2 & 31)` arithmetic
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Sra, rd, rs1, rs2)
    }
    /// `rd = (rs1 < rs2) as signed`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Slt, rd, rs1, rs2)
    }
    /// `rd = (rs1 < rs2) as unsigned`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.rrr(Op::Sltu, rd, rs1, rs2)
    }

    // --- Integer register-immediate ------------------------------------

    /// Emits a register-immediate integer instruction of the given `op`.
    ///
    /// Logical immediates (`andi`/`ori`/`xori`) are zero-extended 16-bit
    /// values; the rest are sign-extended.
    pub fn rri(&mut self, op: Op, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        let imm = match op {
            Op::Andi | Op::Ori | Op::Xori => self.check_imm16u(op.mnemonic(), imm),
            _ => self.check_imm16(op.mnemonic(), imm),
        };
        self.emit(Inst { op, rd: rd.index(), rs1: rs1.index(), rs2: 0, imm })
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Addi, rd, rs1, imm)
    }
    /// `rd = rs1 - imm` (sugar for `addi` with negated immediate)
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Addi, rd, rs1, -imm)
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Andi, rd, rs1, imm)
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Ori, rd, rs1, imm)
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Xori, rd, rs1, imm)
    }
    /// `rd = (rs1 < imm) as signed`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Slti, rd, rs1, imm)
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Slli, rd, rs1, imm & 31)
    }
    /// `rd = rs1 >> imm` logical
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Srli, rd, rs1, imm & 31)
    }
    /// `rd = rs1 >> imm` arithmetic
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Srai, rd, rs1, imm & 31)
    }
    /// `rd = imm << 16` (`imm` is treated as unsigned 16-bit)
    pub fn lui(&mut self, rd: Reg, imm: u16) -> &mut Asm {
        self.emit(Inst { op: Op::Lui, rd: rd.index(), rs1: 0, rs2: 0, imm: imm as i32 })
    }
    /// Loads an arbitrary 32-bit constant using `lui` + `ori` (two
    /// instructions, or one when the value fits a 16-bit immediate).
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Asm {
        if (value as i32) >= -(1 << 15) && (value as i32) < (1 << 15) {
            return self.addi(rd, Reg::R0, value as i32);
        }
        self.lui(rd, (value >> 16) as u16);
        if value & 0xffff != 0 {
            self.ori(rd, rd, (value & 0xffff) as i32);
        }
        self
    }

    // --- Memory ----------------------------------------------------------

    fn mem(&mut self, op: Op, data: u8, base: Reg, disp: i32) -> &mut Asm {
        let disp = self.check_imm16(op.mnemonic(), disp);
        match op {
            Op::Sb | Op::Sh | Op::Sw | Op::Fst => {
                self.emit(Inst { op, rd: 0, rs1: base.index(), rs2: data, imm: disp })
            }
            _ => self.emit(Inst { op, rd: data, rs1: base.index(), rs2: 0, imm: disp }),
        }
    }

    /// `rd = sign_extend(mem8[rs1 + disp])`
    pub fn lb(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Lb, rd.index(), base, disp)
    }
    /// `rd = zero_extend(mem8[rs1 + disp])`
    pub fn lbu(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Lbu, rd.index(), base, disp)
    }
    /// `rd = sign_extend(mem16[rs1 + disp])`
    pub fn lh(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Lh, rd.index(), base, disp)
    }
    /// `rd = zero_extend(mem16[rs1 + disp])`
    pub fn lhu(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Lhu, rd.index(), base, disp)
    }
    /// `rd = mem32[rs1 + disp]`
    pub fn lw(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Lw, rd.index(), base, disp)
    }
    /// `mem8[rs1 + disp] = data`
    pub fn sb(&mut self, data: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Sb, data.index(), base, disp)
    }
    /// `mem16[rs1 + disp] = data`
    pub fn sh(&mut self, data: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Sh, data.index(), base, disp)
    }
    /// `mem32[rs1 + disp] = data`
    pub fn sw(&mut self, data: Reg, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Sw, data.index(), base, disp)
    }
    /// `fd = mem64[rs1 + disp]` as a 64-bit float (FP register index `fd`)
    pub fn fld(&mut self, fd: u8, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Fld, fd & 31, base, disp)
    }
    /// `mem64[rs1 + disp] = fs` (FP register index `fs`)
    pub fn fst(&mut self, fs: u8, base: Reg, disp: i32) -> &mut Asm {
        self.mem(Op::Fst, fs & 31, base, disp)
    }

    // --- Control flow -----------------------------------------------------

    fn branch(&mut self, op: Op, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.emit_to(
            Inst { op, rd: 0, rs1: rs1.index(), rs2: rs2.index(), imm: 0 },
            label,
        )
    }

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(Op::Beq, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(Op::Bne, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(Op::Blt, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(Op::Bge, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 < rs2` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(Op::Bltu, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 >= rs2` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(Op::Bgeu, rs1, rs2, label)
    }
    /// Unconditional direct jump to `label`.
    pub fn j(&mut self, label: &str) -> &mut Asm {
        self.emit_to(Inst { op: Op::J, rd: 0, rs1: 0, rs2: 0, imm: 0 }, label)
    }
    /// Direct call: jump to `label`, return address in `R31`.
    pub fn call(&mut self, label: &str) -> &mut Asm {
        self.emit_to(Inst { op: Op::Jal, rd: 0, rs1: 0, rs2: 0, imm: 0 }, label)
    }
    /// Indirect jump to the address in `rs1` (e.g. `jr ra` to return).
    pub fn jr(&mut self, rs1: Reg) -> &mut Asm {
        self.emit(Inst { op: Op::Jr, rd: 0, rs1: rs1.index(), rs2: 0, imm: 0 })
    }
    /// Indirect call through `rs1`; return address written to `rd`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.emit(Inst { op: Op::Jalr, rd: rd.index(), rs1: rs1.index(), rs2: 0, imm: 0 })
    }
    /// Return: `jr R31`.
    pub fn ret(&mut self) -> &mut Asm {
        self.jr(Reg::RA)
    }

    // --- Floating point -----------------------------------------------------

    fn fff(&mut self, op: Op, fd: u8, fs1: u8, fs2: u8) -> &mut Asm {
        self.emit(Inst { op, rd: fd & 31, rs1: fs1 & 31, rs2: fs2 & 31, imm: 0 })
    }

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Asm {
        self.fff(Op::Fadd, fd, fs1, fs2)
    }
    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Asm {
        self.fff(Op::Fsub, fd, fs1, fs2)
    }
    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Asm {
        self.fff(Op::Fmul, fd, fs1, fs2)
    }
    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Asm {
        self.fff(Op::Fdiv, fd, fs1, fs2)
    }
    /// `fd = sqrt(fs1)`
    pub fn fsqrt(&mut self, fd: u8, fs1: u8) -> &mut Asm {
        self.fff(Op::Fsqrt, fd, fs1, 0)
    }
    /// `fd = fs1`
    pub fn fmov(&mut self, fd: u8, fs1: u8) -> &mut Asm {
        self.fff(Op::Fmov, fd, fs1, 0)
    }
    /// `fd = -fs1`
    pub fn fneg(&mut self, fd: u8, fs1: u8) -> &mut Asm {
        self.fff(Op::Fneg, fd, fs1, 0)
    }
    /// `fd = |fs1|`
    pub fn fabs(&mut self, fd: u8, fs1: u8) -> &mut Asm {
        self.fff(Op::Fabs, fd, fs1, 0)
    }
    /// `rd = (fs1 == fs2) as 0/1`
    pub fn feq(&mut self, rd: Reg, fs1: u8, fs2: u8) -> &mut Asm {
        self.emit(Inst { op: Op::Feq, rd: rd.index(), rs1: fs1 & 31, rs2: fs2 & 31, imm: 0 })
    }
    /// `rd = (fs1 < fs2) as 0/1`
    pub fn flt(&mut self, rd: Reg, fs1: u8, fs2: u8) -> &mut Asm {
        self.emit(Inst { op: Op::Flt, rd: rd.index(), rs1: fs1 & 31, rs2: fs2 & 31, imm: 0 })
    }
    /// `rd = (fs1 <= fs2) as 0/1`
    pub fn fle(&mut self, rd: Reg, fs1: u8, fs2: u8) -> &mut Asm {
        self.emit(Inst { op: Op::Fle, rd: rd.index(), rs1: fs1 & 31, rs2: fs2 & 31, imm: 0 })
    }
    /// `fd = rs1 as f64`
    pub fn cvtif(&mut self, fd: u8, rs1: Reg) -> &mut Asm {
        self.emit(Inst { op: Op::Cvtif, rd: fd & 31, rs1: rs1.index(), rs2: 0, imm: 0 })
    }
    /// `rd = fs1 as i32` (truncating)
    pub fn cvtfi(&mut self, rd: Reg, fs1: u8) -> &mut Asm {
        self.emit(Inst { op: Op::Cvtfi, rd: rd.index(), rs1: fs1 & 31, rs2: 0, imm: 0 })
    }

    // --- Miscellaneous -----------------------------------------------------

    /// No operation.
    pub fn nop(&mut self) -> &mut Asm {
        self.emit(Inst::nop())
    }
    /// Writes `rs1` to the program's output sink.
    pub fn out(&mut self, rs1: Reg) -> &mut Asm {
        self.emit(Inst { op: Op::Out, rd: 0, rs1: rs1.index(), rs2: 0, imm: 0 })
    }
    /// Stops the program.
    pub fn halt(&mut self) -> &mut Asm {
        self.emit(Inst { op: Op::Halt, rd: 0, rs1: 0, rs2: 0, imm: 0 })
    }

    /// Resolves labels and produces the assembled [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] recorded: undefined or duplicate
    /// labels, or out-of-range immediates and branch offsets.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        let mut words = Vec::with_capacity(self.insts.len());
        for (idx, (inst, target)) in self.insts.iter().enumerate() {
            let mut inst = *inst;
            if let Target::Label(name) = target {
                let dest = *self
                    .labels
                    .get(name)
                    .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                let pc = self.base + idx as u32 * INST_BYTES;
                let offset =
                    (dest as i64 - (pc as i64 + INST_BYTES as i64)) / INST_BYTES as i64;
                let limit: i64 = if inst.op == Op::J || inst.op == Op::Jal {
                    1 << 25
                } else {
                    1 << 15
                };
                if !(-limit..limit).contains(&offset) {
                    return Err(AsmError::BranchOutOfRange { label: name.clone(), offset });
                }
                inst.imm = offset as i32;
            }
            words.push(encode(&inst));
        }
        Ok(Program {
            base: self.base,
            entry: self.base,
            words,
            data: self.data.clone(),
        })
    }

    /// Looks up the address of a defined label.
    pub fn label_addr(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, 4);
        a.label("top");
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "top"); // backward
        a.beq(Reg::R0, Reg::R0, "end"); // forward
        a.nop();
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        let back = decode(p.words[2]).unwrap();
        assert_eq!(back.imm, -2); // bne back over subi
        let fwd = decode(p.words[3]).unwrap();
        assert_eq!(fwd.imm, 1); // beq over the nop
    }

    #[test]
    fn undefined_label_reported() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_reported() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn li_small_uses_one_instruction() {
        let mut a = Asm::new();
        a.li(Reg::R1, 100);
        assert_eq!(a.len(), 1);
        let mut b = Asm::new();
        b.li(Reg::R1, 0xdead_beef);
        assert_eq!(b.len(), 2);
        let p = b.assemble().unwrap();
        let lui = decode(p.words[0]).unwrap();
        assert_eq!(lui.op, Op::Lui);
        assert_eq!(lui.imm, 0xdead);
    }

    #[test]
    fn li_exact_multiple_of_64k() {
        let mut a = Asm::new();
        a.li(Reg::R2, 0x0003_0000);
        assert_eq!(a.len(), 1); // ori elided when low half is zero
        let p = a.assemble().unwrap();
        let lui = decode(p.words[0]).unwrap();
        assert_eq!(lui.op, Op::Lui);
        assert_eq!(lui.imm, 3);
    }

    #[test]
    fn immediate_out_of_range_reported() {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, 1 << 20);
        a.halt();
        assert!(matches!(a.assemble(), Err(AsmError::ImmediateOutOfRange { .. })));
    }

    #[test]
    fn data_segments_collected() {
        let mut a = Asm::new();
        a.data_words(0x0010_0000, &[1, 2, 3]);
        a.data_f64(0x0010_1000, &[1.5]);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.data.len(), 2);
        assert_eq!(p.data[0].1.len(), 12);
        assert_eq!(p.data[1].1, 1.5f64.to_le_bytes().to_vec());
    }

    #[test]
    fn here_tracks_addresses() {
        let mut a = Asm::with_base(0x2000);
        assert_eq!(a.here(), 0x2000);
        a.nop();
        assert_eq!(a.here(), 0x2004);
    }

    #[test]
    fn subi_negates() {
        let mut a = Asm::new();
        a.subi(Reg::R1, Reg::R1, 7);
        let p = a.assemble().unwrap();
        let i = decode(p.words[0]).unwrap();
        assert_eq!((i.op, i.imm), (Op::Addi, -7));
    }
}
