//! # fastsim-isa
//!
//! The target instruction-set architecture for the FastSim reproduction.
//!
//! The original FastSim simulated SPARC V8 binaries. This crate defines a
//! compact, SPARC-V8-inspired 32-bit RISC ISA ("SRV8") that plays the same
//! role: a fixed-width, load/store architecture with separate integer and
//! floating-point register files, compare-and-branch conditional branches,
//! direct and indirect jumps, and a long-latency integer divide (the paper's
//! running example of a 34-cycle execute stage).
//!
//! The crate provides:
//!
//! * [`Inst`] / [`Op`] — the decoded instruction representation, with the
//!   operand and execution-class queries the out-of-order pipeline model
//!   needs (destination register, source registers, latency class).
//! * [`encode`] / [`decode`] — the fixed 32-bit binary encoding.
//! * [`Asm`] — a two-pass programmatic assembler with labels, plus a small
//!   textual front end ([`parse_asm`]).
//! * [`Program`] — an assembled program image (code, data, entry point).
//!
//! # Example
//!
//! ```
//! use fastsim_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.addi(Reg::R1, Reg::R0, 10); // counter = 10
//! a.label("loop");
//! a.addi(Reg::R2, Reg::R2, 3); // acc += 3
//! a.subi(Reg::R1, Reg::R1, 1);
//! a.bne(Reg::R1, Reg::R0, "loop");
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.words.len(), 5);
//! # Ok::<(), fastsim_isa::AsmError>(())
//! ```

mod asm;
mod encode;
mod inst;
mod program;
mod reg;
mod text;

pub use asm::{Asm, AsmError};
pub use encode::{decode, encode, DecodeError};
pub use inst::{ExecClass, Inst, Op, RegRef};
pub use program::{DecodedProgram, Program};
pub use reg::Reg;
pub use text::{parse_asm, ParseAsmError};

/// Size of one instruction in bytes. All instructions are fixed width.
pub const INST_BYTES: u32 = 4;

/// Default base address at which assembled code is placed.
pub const DEFAULT_CODE_BASE: u32 = 0x0001_0000;

/// Default base address for static data segments.
pub const DEFAULT_DATA_BASE: u32 = 0x0010_0000;

/// Default initial stack pointer (stack grows down).
pub const DEFAULT_STACK_TOP: u32 = 0x7fff_fff0;
