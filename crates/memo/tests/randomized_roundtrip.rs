//! Randomized round-trips of the arena-backed configuration index through
//! the p-action cache's public API: every sequence of record / lookup /
//! flush / collect / freeze / thaw / merge operations must agree with a
//! plain reference model, no matter how the byte arena gets compacted or
//! rebuilt along the way.

use fastsim_memo::{ActionKind, CacheSnapshot, ConfigLookup, PActionCache, Policy, RetireCounts};
use fastsim_prng::{for_each_case, Rng};
use std::collections::HashMap;

fn advance(n: u32) -> ActionKind {
    ActionKind::Advance { cycles: n, retired: RetireCounts::default() }
}

/// Draws a key from a small universe so hits, misses and re-learns all
/// occur. Lengths vary so arena offsets are irregular.
fn key(rng: &mut Rng) -> Vec<u8> {
    let id = rng.range_u32(0..48);
    let mut k = vec![0x10 | (id % 5) as u8; (id as usize % 7) + 1];
    k.extend_from_slice(&id.to_le_bytes());
    k
}

/// Records a one-action chain (`advance(cycles)` then `Finish`) for a key
/// the cache just missed.
fn record(pc: &mut PActionCache, cycles: u32) {
    pc.record_action(advance(cycles));
    pc.record_action(ActionKind::Finish);
}

#[derive(Clone, Copy)]
struct Entry {
    cycles: u32,
    accessed: bool,
    tenured: bool,
}

/// Interleaves lookups, records, flushes and both collection flavours,
/// mirroring them against a reference model of the configuration table.
/// The model tracks the `accessed`/`tenured` bits that decide collection
/// survival, so the assertions are exact, not merely consistent.
#[test]
fn random_record_flush_collect_round_trip() {
    for_each_case(0x0a11_0cf0_0d01, 192, |seed, rng| {
        let mut pc = PActionCache::new(Policy::Unbounded);
        let mut model: HashMap<Vec<u8>, Entry> = HashMap::new();
        for step in 0..rng.range_usize(20..160) {
            match rng.range_u32(0..20) {
                0 => {
                    pc.flush();
                    model.clear();
                }
                1 | 2 => {
                    let minor = rng.next_bool();
                    pc.collect(minor);
                    model.retain(|_, e| e.accessed || (minor && e.tenured));
                    for e in model.values_mut() {
                        e.accessed = false;
                        e.tenured = true;
                    }
                }
                _ => {
                    let k = key(rng);
                    match pc.register_config(&k) {
                        ConfigLookup::Hit(id) => {
                            let e = model.get_mut(&k).unwrap_or_else(|| {
                                panic!("seed {seed:#x} step {step}: hit on unknown key")
                            });
                            assert_eq!(pc.kind(id), advance(e.cycles), "seed {seed:#x}");
                            assert_eq!(pc.config_at(id), Some(&k[..]), "seed {seed:#x}");
                            e.accessed = true;
                        }
                        ConfigLookup::Miss => {
                            assert!(
                                !model.contains_key(&k),
                                "seed {seed:#x} step {step}: missed a cached key"
                            );
                            let cycles = rng.range_u32(1..100);
                            record(&mut pc, cycles);
                            model.insert(k, Entry { cycles, accessed: true, tenured: false });
                        }
                    }
                }
            }
            assert_eq!(pc.config_count(), model.len(), "seed {seed:#x} step {step}");
        }
        // Final sweep: the cache holds exactly the model, bytes intact.
        for (k, e) in &model {
            match pc.register_config(k) {
                ConfigLookup::Hit(id) => {
                    assert_eq!(pc.kind(id), advance(e.cycles), "seed {seed:#x}")
                }
                ConfigLookup::Miss => panic!("seed {seed:#x}: lost key {k:?}"),
            }
        }
    });
}

/// Freeze → thaw → record → merge, with several workers over overlapping
/// key universes: the merged master must hold the master's keys unchanged
/// and, for keys learned by workers, the first merged writer's chain —
/// and merging every delta a second time must change nothing.
#[test]
fn random_freeze_thaw_merge_round_trip() {
    for_each_case(0x5eed_4e11, 128, |seed, rng| {
        let mut master = PActionCache::new(Policy::Unbounded);
        let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
        for _ in 0..rng.range_usize(0..12) {
            let k = key(rng);
            if let ConfigLookup::Miss = master.register_config(&k) {
                let cycles = rng.range_u32(1..100);
                record(&mut master, cycles);
                model.insert(k, cycles);
            }
        }
        let snap = master.freeze();

        let mut deltas: Vec<CacheSnapshot> = Vec::new();
        let mut learned: Vec<HashMap<Vec<u8>, u32>> = Vec::new();
        for _ in 0..rng.range_usize(1..4) {
            let mut w = PActionCache::from_snapshot(&snap);
            let mut mine = HashMap::new();
            for _ in 0..rng.range_usize(1..16) {
                let k = key(rng);
                if let ConfigLookup::Miss = w.register_config(&k) {
                    let cycles = rng.range_u32(100..200);
                    record(&mut w, cycles);
                    mine.insert(k, cycles);
                }
            }
            deltas.push(w.freeze());
            learned.push(mine);
        }

        // First merged writer wins on every key the master lacked.
        for (delta, mine) in deltas.iter().zip(&learned) {
            master.merge_from(delta);
            for (k, cycles) in mine {
                model.entry(k.clone()).or_insert(*cycles);
            }
        }
        assert_eq!(master.config_count(), model.len(), "seed {seed:#x}");
        for (k, cycles) in &model {
            match master.register_config(k) {
                ConfigLookup::Hit(id) => {
                    assert_eq!(master.kind(id), advance(*cycles), "seed {seed:#x} key {k:?}")
                }
                ConfigLookup::Miss => panic!("seed {seed:#x}: merged key {k:?} lost"),
            }
        }
        // Idempotence: re-merging all deltas copies nothing.
        let before = master.freeze();
        for delta in &deltas {
            assert!(master.merge_from(delta).is_noop(), "seed {seed:#x}");
        }
        assert_eq!(master.config_count(), before.config_count(), "seed {seed:#x}");
        assert_eq!(master.node_count(), before.node_count(), "seed {seed:#x}");
        assert_eq!(master.stats(), before.stats(), "seed {seed:#x}");
    });
}
