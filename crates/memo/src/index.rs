//! The configuration index: an open-addressed fingerprint table over one
//! contiguous append-only byte arena.
//!
//! The previous implementation kept `HashMap<Arc<[u8]>, NodeId>`: every
//! miss allocated an `Arc<[u8]>` copy of the configuration bytes, and a
//! miss paid SipHash twice (once in `get`, once in `insert`). This index
//! removes both costs from the per-interaction-cycle hot path:
//!
//! * configuration bytes live in **one byte arena** (`Vec<u8>`), each key
//!   an `(offset, len)` slice of it — no per-configuration allocation,
//!   no pointer chasing, and trivially cheap clones for snapshots;
//! * keys are addressed by a **64-bit fingerprint** from
//!   [`fastsim_hash::hash64`], computed **once** per lookup by the caller
//!   and carried in a [`ConfigRef`] thereafter, so the miss-path insert,
//!   garbage-collection rebuilds and snapshot merges never rehash bytes;
//! * the table is **open-addressed** (linear probing, power-of-two
//!   capacity, ≤ 7/8 load): a hit costs one probe sequence over a flat
//!   `Vec<u32>` with a fingerprint pre-check before any byte comparison.
//!
//! Determinism: slots are appended in insertion order and the arena only
//! ever appends between compactions, so equal operation sequences produce
//! equal arenas, equal slot orders and equal probe layouts — the property
//! the batch driver's bit-identical merge relies on.

use crate::action::NodeId;

/// A configuration key held by the index: where its bytes live in the
/// arena, plus the 64-bit fingerprint so no path ever rehashes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ConfigRef {
    pub(crate) offset: u32,
    pub(crate) len: u32,
    pub(crate) fp: u64,
}

/// One inserted key (insertion-ordered; the probe table stores indices
/// into this vector).
#[derive(Clone, Copy, Debug)]
struct Slot {
    cref: ConfigRef,
    head: NodeId,
}

/// Probe-table sentinel: empty bucket.
const EMPTY: u32 = u32::MAX;

/// Open-addressed configuration index over a byte arena. See the module
/// docs for the design.
#[derive(Clone, Debug, Default)]
pub(crate) struct ConfigIndex {
    /// All configuration bytes, appended back to back.
    arena: Vec<u8>,
    /// Keys in insertion order.
    slots: Vec<Slot>,
    /// Power-of-two probe table of indices into `slots` (or `EMPTY`).
    table: Vec<u32>,
}

impl ConfigIndex {
    pub(crate) fn new() -> ConfigIndex {
        ConfigIndex::default()
    }

    /// Number of configurations in the index.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Total configuration bytes held (actual arena occupancy; after a
    /// [`compact`](ConfigIndex::compact)-style rebuild this is exactly the
    /// live bytes).
    pub(crate) fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Drops every key and the whole arena (flush-on-full).
    pub(crate) fn clear(&mut self) {
        self.arena.clear();
        self.slots.clear();
        self.table.clear();
    }

    /// The bytes of a key previously returned by
    /// [`insert`](ConfigIndex::insert).
    pub(crate) fn bytes_at(&self, r: ConfigRef) -> &[u8] {
        &self.arena[r.offset as usize..(r.offset + r.len) as usize]
    }

    /// The whole arena, for serialization.
    pub(crate) fn arena(&self) -> &[u8] {
        &self.arena
    }

    /// Every inserted key in insertion order, for serialization.
    pub(crate) fn slot_entries(&self) -> impl Iterator<Item = (ConfigRef, NodeId)> + '_ {
        self.slots.iter().map(|s| (s.cref, s.head))
    }

    /// Rebuilds an index from serialized parts: the arena plus the keys in
    /// insertion order. The probe table is re-derived from the stored
    /// fingerprints (its layout is an implementation detail, not part of
    /// the wire format); lookup results and slot order — everything the
    /// deterministic merge relies on — are reproduced exactly.
    ///
    /// Callers must have validated that every `ConfigRef` is in bounds of
    /// `arena` and that its fingerprint matches its bytes.
    pub(crate) fn from_parts(arena: Vec<u8>, entries: Vec<(ConfigRef, NodeId)>) -> ConfigIndex {
        let mut ix = ConfigIndex {
            arena,
            slots: entries.into_iter().map(|(cref, head)| Slot { cref, head }).collect(),
            table: Vec::new(),
        };
        ix.grow_if_needed(ix.slots.len());
        ix
    }

    #[inline]
    fn mask(&self) -> usize {
        debug_assert!(self.table.len().is_power_of_two());
        self.table.len() - 1
    }

    /// Looks up `bytes` under a fingerprint the caller already computed.
    /// One probe sequence; byte comparison only on fingerprint matches.
    pub(crate) fn lookup(&self, fp: u64, bytes: &[u8]) -> Option<NodeId> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = fp as usize & mask;
        loop {
            match self.table[i] {
                EMPTY => return None,
                s => {
                    let slot = &self.slots[s as usize];
                    if slot.cref.fp == fp && self.bytes_at(slot.cref) == bytes {
                        return Some(slot.head);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `bytes` (appending them to the arena) under a fingerprint
    /// computed by an earlier [`lookup`](ConfigIndex::lookup) — the miss
    /// path never hashes the bytes a second time. If the key is already
    /// present its head is overwritten in place and no bytes are appended
    /// (matching the previous `HashMap::insert` semantics).
    pub(crate) fn insert(&mut self, fp: u64, bytes: &[u8], head: NodeId) -> ConfigRef {
        self.grow_if_needed(self.slots.len() + 1);
        let mask = self.mask();
        let mut i = fp as usize & mask;
        loop {
            match self.table[i] {
                EMPTY => break,
                s => {
                    let slot = &mut self.slots[s as usize];
                    if slot.cref.fp == fp
                        && &self.arena[slot.cref.offset as usize
                            ..(slot.cref.offset + slot.cref.len) as usize]
                            == bytes
                    {
                        slot.head = head;
                        return slot.cref;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        let cref = ConfigRef {
            offset: u32::try_from(self.arena.len()).expect("arena exceeds 4 GiB"),
            len: bytes.len() as u32,
            fp,
        };
        self.arena.extend_from_slice(bytes);
        self.table[i] = self.slots.len() as u32;
        self.slots.push(Slot { cref, head });
        cref
    }

    /// Grows and re-probes the table for `upcoming` slots. Re-probing uses
    /// the stored fingerprints — no byte is ever rehashed.
    fn grow_if_needed(&mut self, upcoming: usize) {
        // ≤ 7/8 load keeps linear-probe chains short.
        if self.table.len() >= 16 && upcoming * 8 <= self.table.len() * 7 {
            return;
        }
        let cap = (upcoming * 2).next_power_of_two().max(16);
        self.table = vec![EMPTY; cap];
        let mask = cap - 1;
        for (s, slot) in self.slots.iter().enumerate() {
            let mut i = slot.cref.fp as usize & mask;
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = s as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsim_hash::hash64;
    use fastsim_prng::for_each_case;

    fn insert_bytes(ix: &mut ConfigIndex, bytes: &[u8], head: NodeId) -> ConfigRef {
        ix.insert(hash64(bytes), bytes, head)
    }

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let mut ix = ConfigIndex::new();
        let key = b"config-A";
        let fp = hash64(key);
        assert_eq!(ix.lookup(fp, key), None);
        let r = ix.insert(fp, key, 7);
        assert_eq!(ix.lookup(fp, key), Some(7));
        assert_eq!(ix.bytes_at(r), key);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.arena_bytes(), key.len());
    }

    #[test]
    fn duplicate_insert_overwrites_without_arena_growth() {
        let mut ix = ConfigIndex::new();
        let r1 = insert_bytes(&mut ix, b"K", 1);
        let r2 = insert_bytes(&mut ix, b"K", 2);
        assert_eq!(r1, r2, "same key, same arena slice");
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.arena_bytes(), 1);
        assert_eq!(ix.lookup(hash64(b"K"), b"K"), Some(2));
    }

    #[test]
    fn clear_empties_everything() {
        let mut ix = ConfigIndex::new();
        insert_bytes(&mut ix, b"a", 0);
        insert_bytes(&mut ix, b"b", 1);
        ix.clear();
        assert_eq!(ix.len(), 0);
        assert_eq!(ix.arena_bytes(), 0);
        assert_eq!(ix.lookup(hash64(b"a"), b"a"), None);
    }

    #[test]
    fn colliding_fingerprint_buckets_still_resolve_by_bytes() {
        // Force every key to the same probe start by inserting enough keys
        // into a tiny table; the full probe sequence plus byte comparison
        // must keep them distinct.
        let mut ix = ConfigIndex::new();
        let keys: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            insert_bytes(&mut ix, k, i as NodeId);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(ix.lookup(hash64(k), k), Some(i as NodeId), "key {i}");
        }
        assert_eq!(ix.lookup(hash64(b"absent"), b"absent"), None);
    }

    /// Model check against a `HashMap`: arbitrary interleavings of insert,
    /// duplicate insert, lookup and clear agree with the reference map.
    #[test]
    fn random_ops_match_reference_map() {
        use std::collections::HashMap;
        for_each_case(0x1d_c0ffee, 256, |seed, rng| {
            let mut ix = ConfigIndex::new();
            let mut reference: HashMap<Vec<u8>, NodeId> = HashMap::new();
            for step in 0..rng.range_usize(1..120) {
                let key: Vec<u8> = (0..rng.range_usize(1..24)).map(|_| rng.next_u8() & 3).collect();
                match rng.range_u32(0..4) {
                    0 => {
                        let head = step as NodeId;
                        insert_bytes(&mut ix, &key, head);
                        reference.insert(key, head);
                    }
                    1 if rng.range_u32(0..20) == 0 => {
                        ix.clear();
                        reference.clear();
                    }
                    _ => {
                        assert_eq!(
                            ix.lookup(hash64(&key), &key),
                            reference.get(&key).copied(),
                            "seed {seed:#x}"
                        );
                    }
                }
                assert_eq!(ix.len(), reference.len(), "seed {seed:#x}");
            }
            for (key, head) in &reference {
                assert_eq!(ix.lookup(hash64(key), key), Some(*head), "seed {seed:#x}");
            }
        });
    }
}
