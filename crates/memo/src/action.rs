//! Action and outcome types stored in the p-action cache.

/// Index of an action node in the cache's arena.
pub type NodeId = u32;

/// Retirement bookkeeping carried by an [`ActionKind::Advance`] action:
/// how many entries to pop from each of the functional engine's queues.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RetireCounts {
    /// Instructions retired.
    pub insts: u32,
    /// Loads retired (lQ pops).
    pub loads: u32,
    /// Stores retired (sQ pops).
    pub stores: u32,
    /// Multi-target control transfers retired (cQ pops).
    pub ctrls: u32,
    /// Conditional branches retired (statistics only).
    pub branches: u32,
}

impl RetireCounts {
    /// Component-wise sum.
    pub fn add(&mut self, other: RetireCounts) {
        self.insts += other.insts;
        self.loads += other.loads;
        self.stores += other.stores;
        self.ctrls += other.ctrls;
        self.branches += other.branches;
    }
}

/// One simulator action, as recorded by the detailed µ-architecture
/// simulator and replayed by fast-forwarding.
///
/// Queue indices are head-relative positions in the functional engine's
/// queues at execution time (paper Figure 5: `addr = lQ[0]`), which is what
/// makes the actions executable without the iQ.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ActionKind {
    /// Advance the simulation cycle counter by `cycles`, retiring
    /// `retired` instructions along the way (the paper's "Retire Queues /
    /// cycle_counter += 6" in Figure 5). Always the first action after a
    /// configuration.
    Advance {
        /// Simulated cycles covered.
        cycles: u32,
        /// Queue pops and counters.
        retired: RetireCounts,
    },
    /// Return to direct execution for the next control record. Outcome:
    /// [`OutcomeKey::Branch`], [`OutcomeKey::Indirect`],
    /// [`OutcomeKey::Halted`] or [`OutcomeKey::Blocked`].
    FetchRecord,
    /// Issue the load at `lq_index` to the cache simulator. Outcome:
    /// [`OutcomeKey::Interval`].
    IssueLoad {
        /// Head-relative lQ position.
        lq_index: u32,
    },
    /// Poll the cache for the load at `lq_index`. Outcome:
    /// [`OutcomeKey::PollReady`] or [`OutcomeKey::PollWait`].
    PollLoad {
        /// Head-relative lQ position.
        lq_index: u32,
    },
    /// Issue the store at `sq_index` to the cache simulator.
    IssueStore {
        /// Head-relative sQ position.
        sq_index: u32,
    },
    /// Abandon the outstanding cache access of a squashed load.
    CancelLoad {
        /// Head-relative lQ position.
        lq_index: u32,
    },
    /// Roll the functional engine back to the mispredicted branch at
    /// `ctrl_index` (restores registers/memory, truncates queues).
    Rollback {
        /// Head-relative cQ position of the branch.
        ctrl_index: u32,
    },
    /// A `halt` retired: simulation is complete.
    Finish,
}

impl ActionKind {
    /// Whether this action's successor depends on an observed outcome
    /// (and therefore branches in the action graph).
    pub fn has_outcome(&self) -> bool {
        matches!(
            self,
            ActionKind::FetchRecord | ActionKind::IssueLoad { .. } | ActionKind::PollLoad { .. }
        )
    }

    /// Modeled size in bytes for the memory accounting of §4.3 (the action
    /// record itself plus one successor link).
    pub fn modeled_bytes(&self) -> usize {
        16
    }
}

/// The observed outcome of an environment-dependent action — the value the
/// action graph branches on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutcomeKey {
    /// Conditional-branch record: direction and prediction correctness
    /// (the paper's four possible outcomes).
    Branch {
        /// Actual direction.
        taken: bool,
        /// Prediction wrong?
        mispredicted: bool,
    },
    /// Indirect-jump record: concrete target (arbitrarily many outcomes)
    /// and prediction correctness.
    Indirect {
        /// Actual target address.
        target: u32,
        /// Prediction wrong?
        mispredicted: bool,
    },
    /// Direct execution halted on the current path.
    Halted,
    /// Direct execution left the code segment on the current (wrong) path.
    Blocked,
    /// A load issue returned this interval.
    Interval(u32),
    /// A load poll reported data ready.
    PollReady,
    /// A load poll asked for a further wait of this many cycles.
    PollWait(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(ActionKind::FetchRecord.has_outcome());
        assert!(ActionKind::IssueLoad { lq_index: 0 }.has_outcome());
        assert!(ActionKind::PollLoad { lq_index: 0 }.has_outcome());
        assert!(!ActionKind::Advance { cycles: 1, retired: RetireCounts::default() }
            .has_outcome());
        assert!(!ActionKind::IssueStore { sq_index: 0 }.has_outcome());
        assert!(!ActionKind::Rollback { ctrl_index: 0 }.has_outcome());
        assert!(!ActionKind::Finish.has_outcome());
    }

    #[test]
    fn retire_counts_accumulate() {
        let mut a = RetireCounts { insts: 1, loads: 1, stores: 0, ctrls: 0, branches: 0 };
        a.add(RetireCounts { insts: 3, loads: 0, stores: 2, ctrls: 1, branches: 1 });
        assert_eq!(a, RetireCounts { insts: 4, loads: 1, stores: 2, ctrls: 1, branches: 1 });
    }

    #[test]
    fn outcome_keys_distinguish_values() {
        assert_ne!(OutcomeKey::Interval(6), OutcomeKey::Interval(7));
        assert_ne!(
            OutcomeKey::Branch { taken: true, mispredicted: false },
            OutcomeKey::Branch { taken: true, mispredicted: true }
        );
        assert_ne!(OutcomeKey::PollReady, OutcomeKey::PollWait(1));
    }
}
