//! Frozen snapshots of the p-action cache, and the merge step that folds
//! per-worker deltas back into a master cache.
//!
//! The batch-simulation driver (in `fastsim-core`) shares one warm cache
//! across many worker threads per round:
//!
//! 1. the master cache is **frozen** into an immutable [`CacheSnapshot`]
//!    at round start ([`PActionCache::freeze`]);
//! 2. each worker **thaws** a private working copy
//!    ([`PActionCache::from_snapshot`]) — the snapshot itself is shared
//!    behind an `Arc` and never mutated — and records its own delta while
//!    simulating;
//! 3. between rounds the workers' frozen deltas are **merged** back into
//!    the master ([`PActionCache::merge_from`]) in a deterministic order:
//!    first writer wins on configuration keys, and only the material
//!    actually copied is accounted, which makes the merge idempotent.
//!
//! Snapshots carry warmth beyond the recorded chains: compiled trace
//! segments, their hotness counters and chain-link bits ride along, are
//! revalidated at thaw, and eligible worker-compiled segments are
//! imported by the merge — so a refrozen master hands the next round (or
//! the next served client) segments that replay from the first entry
//! instead of recompiling from scratch.
//!
//! A thawed cache remembers how many leading nodes it inherited from the
//! snapshot (its *base*). Nodes in the base keep their ids as long as the
//! cache only appends (no flush or collection), so a delta can be merged
//! back by grafting the new outcome branches onto the base prefix and
//! copying only the newly recorded subgraphs. After a flush or collection
//! the correspondence is gone; the merge then falls back to copying
//! everything reachable from new configuration keys.

use crate::action::NodeId;
use crate::cache::{Node, PActionCache, Successors, BRANCH_BYTES, CONFIG_OVERHEAD_BYTES};
use crate::index::ConfigIndex;
use crate::policy::Policy;
use crate::trace::TraceSegment;
use crate::MemoStats;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// An immutable, shareable copy of a [`PActionCache`]'s replayable state.
///
/// Snapshots are plain data: they carry the node arena, the configuration
/// table, the policy, and the statistics at freeze time, but none of the
/// recording state (`attach` position, pending configuration). They are
/// `Send + Sync`, so one snapshot behind an `Arc` can seed any number of
/// concurrent simulations.
#[derive(Clone, Debug)]
pub struct CacheSnapshot {
    pub(crate) nodes: Vec<Node>,
    /// Accessed bits at freeze time, parallel to `nodes` (GC liveness
    /// carries across a freeze/thaw round trip).
    pub(crate) accessed: Vec<bool>,
    pub(crate) index: ConfigIndex,
    pub(crate) policy: Policy,
    pub(crate) stats: MemoStats,
    /// The frozen cache's inherited-base length (see
    /// [`PActionCache::frozen_base`]): how many leading nodes it shared,
    /// id-for-id, with the snapshot it was thawed from. Used by
    /// [`PActionCache::merge_from`] to graft deltas precisely.
    pub(crate) base_len: usize,
    /// The source cache's replayable-content version at freeze time (see
    /// [`PActionCache::version`]).
    pub(crate) version: u64,
    /// Compiled trace segments at freeze time, parallel to `nodes`. A
    /// thawed copy revives them after revalidating each against the
    /// thawed arena ([`TraceSegment::fp`]), and
    /// [`merge_from`](PActionCache::merge_from) imports the ones living
    /// entirely inside the shared base prefix — so warmth includes
    /// compiled traces, not just recorded chains.
    pub(crate) traces: Vec<Option<Arc<TraceSegment>>>,
    /// Trace hotness counters at freeze time, parallel to `nodes` (merged
    /// by element-wise max, which is order-independent).
    pub(crate) hotness: Vec<u32>,
    /// Which nodes had a patched chain link at freeze time, parallel to
    /// `nodes` (stamps are epoch-relative and do not serialize; a bool
    /// per node does — thaw re-stamps them against its fresh epoch).
    pub(crate) chained: Vec<bool>,
}

// One snapshot is replayed from by many threads at once.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CacheSnapshot>();
    assert_send_sync::<PActionCache>();
};

impl CacheSnapshot {
    /// Number of configurations cached at freeze time.
    pub fn config_count(&self) -> usize {
        self.index.len()
    }

    /// Number of action nodes in the frozen arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The statistics at freeze time.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// The frozen cache's replacement policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// How many leading nodes the frozen cache inherited from the snapshot
    /// it was thawed from (`0` if built from scratch, or after a flush or
    /// collection broke the correspondence).
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// The source cache's replayable-content version at freeze time. Only
    /// comparable against the same cache lineage (see
    /// [`PActionCache::dirty_since`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of compiled trace segments the snapshot carries.
    pub fn trace_count(&self) -> usize {
        self.traces.iter().filter(|t| t.is_some()).count()
    }
}

/// What a [`PActionCache::merge_from`] call actually copied.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MergeOutcome {
    /// New configurations inserted into the master's table.
    pub configs_added: u64,
    /// Action nodes copied into the master's arena.
    pub actions_added: u64,
    /// Outcome branches grafted onto nodes the master already had.
    pub branches_grafted: u64,
    /// Configurations the delta discovered that another delta (or the
    /// master itself) had already recorded — dropped, first writer wins.
    pub configs_deduped: u64,
    /// Modeled bytes added to the master.
    pub bytes_added: usize,
    /// Compiled trace segments imported from the delta (first writer wins
    /// per node; only segments contained entirely in the shared base
    /// prefix are eligible, each revalidated against the merged arena).
    pub segments_imported: u64,
}

impl MergeOutcome {
    /// Whether the merge changed the master at all.
    pub fn is_noop(&self) -> bool {
        self.configs_added == 0 && self.actions_added == 0 && self.branches_grafted == 0
    }
}

/// Resolves a delta-side node id to a master-side id, scheduling the node
/// for copying on first sight. Ids below `base_len` are inherited and map
/// to themselves.
fn resolve(
    t: NodeId,
    base_len: usize,
    forwarding: &mut HashMap<NodeId, NodeId>,
    queue: &mut VecDeque<NodeId>,
    next_new: &mut NodeId,
) -> NodeId {
    if let Some(&m) = forwarding.get(&t) {
        return m;
    }
    if (t as usize) < base_len {
        return t;
    }
    let n = *next_new;
    forwarding.insert(t, n);
    *next_new += 1;
    queue.push_back(t);
    n
}

impl PActionCache {
    /// Freezes the replayable state into an immutable [`CacheSnapshot`].
    ///
    /// Recording state (the attach position and any pending configuration)
    /// is not captured: freeze at a quiescent point — after `Finish`, or
    /// between batch jobs.
    pub fn freeze(&self) -> CacheSnapshot {
        CacheSnapshot {
            nodes: self.nodes.clone(),
            accessed: self.accessed.clone(),
            index: self.index.clone(),
            policy: self.policy,
            stats: self.stats,
            base_len: self.frozen_base,
            version: self.version,
            traces: self.traces.clone(),
            hotness: self.hotness.clone(),
            chained: self.chain_stamp.iter().map(|&s| s == self.chain_epoch).collect(),
        }
    }

    /// Re-freezes only if the replayable content changed since `prev` was
    /// frozen off this cache: returns `None` (keep using `prev`) when the
    /// version still matches, or a fresh [`CacheSnapshot`] otherwise.
    ///
    /// This is the cheap periodic **re-freeze** primitive for a long-lived
    /// master cache that absorbs worker deltas: freezing clones the whole
    /// arena, so a server that re-freezes on a schedule can skip the copy
    /// entirely across quiet periods. `prev` must come from this cache's
    /// lineage (the version counter is per-lineage, not global).
    pub fn freeze_if_newer(&self, prev: &CacheSnapshot) -> Option<CacheSnapshot> {
        if self.version == prev.version {
            None
        } else {
            Some(self.freeze())
        }
    }

    /// Thaws a private working copy of `snapshot`. The copy starts with the
    /// snapshot's statistics (so cumulative counters survive warm restarts)
    /// and remembers the snapshot length as its inherited base, which lets
    /// [`merge_from`](PActionCache::merge_from) fold the copy's delta back
    /// precisely.
    pub fn from_snapshot(snapshot: &CacheSnapshot) -> PActionCache {
        let mut pc = PActionCache::new(snapshot.policy);
        pc.nodes = snapshot.nodes.clone();
        pc.accessed = snapshot.accessed.clone();
        pc.index = snapshot.index.clone();
        pc.stats = snapshot.stats;
        pc.version = snapshot.version;
        pc.frozen_base = snapshot.nodes.len();
        // Size the side tables, then revive the snapshot's compiled
        // segments: each is revalidated against the thawed arena before
        // installation (defense in depth — freeze/thaw copies the arena
        // verbatim, so a mismatch means corruption or a crossed lineage;
        // the segment is dropped, never replayed wrong). Hotness carries
        // over; the adaptive recency clock starts fresh.
        pc.invalidate_traces();
        let n = pc.hotness.len();
        pc.hotness.copy_from_slice(&snapshot.hotness[..n]);
        for (i, seg) in snapshot.traces.iter().enumerate() {
            let Some(seg) = seg else { continue };
            if pc.segment_valid(seg) {
                pc.traces[i] = Some(Arc::clone(seg));
                if snapshot.chained.get(i).copied().unwrap_or(false) {
                    pc.chain_stamp[i] = pc.chain_epoch;
                }
                pc.stats.segments_thawed += 1;
            }
        }
        pc
    }

    /// Folds a worker's frozen `delta` into this master cache.
    ///
    /// The delta must descend from this master: its first
    /// [`base_len`](CacheSnapshot::base_len) nodes are the prefix frozen
    /// off this cache at round start, which the master must still hold
    /// unchanged (the master may only have *appended* since — merging
    /// other deltas is fine, flushing or collecting is not).
    ///
    /// Merge semantics:
    ///
    /// - **First writer wins** on configuration keys: a configuration the
    ///   master already has keeps the master's chain; the delta's version
    ///   is dropped (counted in
    ///   [`configs_deduped`](MergeOutcome::configs_deduped)).
    /// - New outcome branches recorded on inherited nodes are grafted onto
    ///   the master's corresponding nodes (again first writer wins per
    ///   outcome key).
    /// - Subgraphs reachable from new configuration keys or grafted
    ///   branches are copied, in deterministic (node-id, then breadth-first)
    ///   order.
    /// - Only copied material is accounted (static counters, modeled
    ///   bytes), so merging the same delta twice is a no-op the second
    ///   time.
    ///
    /// Returns what was copied.
    ///
    /// # Panics
    ///
    /// Panics if `delta.base_len()` exceeds this cache's node count (the
    /// delta cannot descend from this cache).
    pub fn merge_from(&mut self, delta: &CacheSnapshot) -> MergeOutcome {
        assert!(
            delta.base_len <= self.nodes.len(),
            "delta base ({} nodes) exceeds master ({} nodes): not a descendant",
            delta.base_len,
            self.nodes.len()
        );
        self.merge_with_base(delta, delta.base_len)
    }

    /// Folds a **foreign** snapshot — one that does not descend from this
    /// cache (a peer server's shipped master, a snapshot loaded from disk
    /// into an already-warm group) — into this cache.
    ///
    /// No node ids are shared between the two lineages, so the merge
    /// treats the whole snapshot as delta: every configuration subgraph is
    /// copied (first writer wins on keys, exactly like
    /// [`merge_from`](PActionCache::merge_from)), and nothing is grafted
    /// onto existing nodes. Compiled trace segments are not imported —
    /// their node ids are meaningless here — but the copied chains re-heat
    /// and recompile through the normal hotness path. Idempotent: merging
    /// the same snapshot twice copies nothing the second time.
    pub fn merge_foreign(&mut self, snapshot: &CacheSnapshot) -> MergeOutcome {
        self.merge_with_base(snapshot, 0)
    }

    /// The merge engine behind [`merge_from`](PActionCache::merge_from)
    /// and [`merge_foreign`](PActionCache::merge_foreign): `base_len` is
    /// how many leading delta node ids map id-for-id onto this cache
    /// (`0` for a foreign snapshot).
    fn merge_with_base(&mut self, delta: &CacheSnapshot, base_len: usize) -> MergeOutcome {
        let mut out = MergeOutcome::default();
        let mut forwarding: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut next_new = self.nodes.len() as NodeId;

        // Pass 1 — map every delta configuration head. A key the master
        // already has resolves to the master's chain (first writer wins);
        // the rest are roots to copy. Scanning the arena in id order (not
        // the hash table) keeps the merge deterministic.
        let mut roots: Vec<NodeId> = Vec::new();
        for (i, node) in delta.nodes.iter().enumerate() {
            let Some(r) = node.config else { continue };
            // The stored fingerprint travels with the key: the master's
            // lookup never rehashes the delta's bytes.
            if let Some(existing) = self.index.lookup(r.fp, delta.index.bytes_at(r)) {
                forwarding.insert(i as NodeId, existing);
                if i >= base_len {
                    out.configs_deduped += 1;
                }
            } else if i >= base_len {
                roots.push(i as NodeId);
            }
            // An inherited head missing from the master means the master
            // flushed or collected since the freeze; links to it are cut,
            // like any link into collected space.
        }

        // Pass 2 — schedule the new configuration subgraphs.
        for &r in &roots {
            resolve(r, base_len, &mut forwarding, &mut queue, &mut next_new);
        }

        // Pass 3 — graft the delta's additions to inherited nodes: filled
        // single-successor links and new outcome branches.
        let mut links_filled = false;
        for i in 0..base_len {
            match (&delta.nodes[i].next, &mut self.nodes[i].next) {
                (Successors::Single(Some(t)), Successors::Single(slot)) if slot.is_none() => {
                    let mapped =
                        resolve(*t, base_len, &mut forwarding, &mut queue, &mut next_new);
                    *slot = Some(mapped);
                    links_filled = true;
                }
                (Successors::Multi(theirs), Successors::Multi(ours)) => {
                    for (key, t) in theirs {
                        if ours.iter().any(|(k, _)| k == key) {
                            continue; // first writer wins on this outcome
                        }
                        let mapped =
                            resolve(*t, base_len, &mut forwarding, &mut queue, &mut next_new);
                        // Can't call add_bytes here: `ours` borrows nodes.
                        ours.push((*key, mapped));
                        out.branches_grafted += 1;
                        out.bytes_added += BRANCH_BYTES;
                    }
                }
                _ => {}
            }
        }
        self.add_bytes(out.branches_grafted as usize * BRANCH_BYTES);

        // Pass 4 — copy scheduled nodes breadth-first. FIFO order makes
        // append order match reservation order, so each copy lands on the
        // id `resolve` promised for it.
        while let Some(t) = queue.pop_front() {
            debug_assert_eq!(forwarding[&t], self.nodes.len() as NodeId);
            let src = &delta.nodes[t as usize];
            let next = match &src.next {
                Successors::Single(slot) => Successors::Single(slot.map(|s| {
                    resolve(s, base_len, &mut forwarding, &mut queue, &mut next_new)
                })),
                Successors::Multi(branches) => Successors::Multi(
                    branches
                        .iter()
                        .map(|(k, s)| {
                            (*k, resolve(*s, base_len, &mut forwarding, &mut queue, &mut next_new))
                        })
                        .collect(),
                ),
            };
            let mut bytes = src.kind.modeled_bytes();
            if let Successors::Multi(b) = &next {
                bytes += b.len() * BRANCH_BYTES;
            }
            // A copied head always carries a new key (existing keys were
            // resolved to the master's chain in pass 1), so this insert
            // appends the bytes to the master's arena.
            let new_id = self.nodes.len() as NodeId;
            let config = src.config.map(|r| {
                bytes += r.len as usize + CONFIG_OVERHEAD_BYTES;
                let cref = self.index.insert(r.fp, delta.index.bytes_at(r), new_id);
                self.stats.static_configs += 1;
                out.configs_added += 1;
                cref
            });
            self.nodes.push(Node { kind: src.kind, next, config, tenured: src.tenured });
            self.accessed.push(delta.accessed[t as usize]);
            self.add_bytes(bytes);
            self.stats.static_actions += 1;
            out.actions_added += 1;
            out.bytes_added += bytes;
        }
        // The master only appended: its own compiled segments stay valid
        // (filled links and new branches are additions the segments
        // either carry or cut/fall back through — see the trace module
        // docs), so grow the side tables instead of dropping them. Chain
        // links are severed (epoch bump) and re-patch against the merged
        // graph.
        self.grow_trace_tables_after_merge();
        // Import the delta's compiled segments that live entirely inside
        // the shared base prefix: ids there are identical on both sides,
        // so a worker's compile effort is meaningful to the master — and
        // to every future thaw of its snapshots. First writer wins per
        // node; each import is revalidated against the merged arena (a
        // graft that changed a dispatched node's edge order disqualifies
        // the candidate rather than importing it wrong).
        let import_len = base_len.min(delta.traces.len());
        for i in 0..import_len {
            let Some(seg) = &delta.traces[i] else { continue };
            if self.traces[i].is_some() || (seg.max_node as usize) >= base_len {
                continue;
            }
            if self.segment_valid(seg) {
                self.traces[i] = Some(Arc::clone(seg));
                out.segments_imported += 1;
            }
        }
        // Merge hotness by element-wise max: commutative and idempotent,
        // so the result is independent of delta merge order and re-merges
        // stay no-ops.
        let mut warmth_changed = out.segments_imported > 0;
        for i in 0..base_len.min(delta.hotness.len()) {
            if delta.hotness[i] > self.hotness[i] {
                self.hotness[i] = delta.hotness[i];
                warmth_changed = true;
            }
        }
        // A filled single-successor link changes replayable content without
        // moving any `MergeOutcome` counter, so it must bump the version
        // too — as does imported warmth (segments/hotness), which future
        // freezes must capture for `freeze_if_newer` to ship it.
        if !out.is_noop() || links_filled || warmth_changed {
            self.version += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionKind, OutcomeKey, RetireCounts};
    use crate::cache::ConfigLookup;

    fn advance(n: u32) -> ActionKind {
        ActionKind::Advance { cycles: n, retired: RetireCounts::default() }
    }

    /// Records one config with a two-action chain per key.
    fn record(pc: &mut PActionCache, key: &[u8], cycles: u32) {
        assert_eq!(pc.register_config(key), ConfigLookup::Miss);
        pc.record_action(advance(cycles));
        pc.record_action(ActionKind::Finish);
    }

    #[test]
    fn freeze_thaw_round_trip_replays() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 3);
        let snap = master.freeze();
        assert_eq!(snap.config_count(), 1);
        assert_eq!(snap.node_count(), 2);
        assert_eq!(snap.stats().static_configs, 1);

        let mut thawed = PActionCache::from_snapshot(&snap);
        match thawed.register_config(b"A") {
            ConfigLookup::Hit(id) => assert_eq!(thawed.kind(id), advance(3)),
            ConfigLookup::Miss => panic!("thawed cache must replay the snapshot"),
        }
        // Cumulative counters carried over.
        assert_eq!(thawed.stats().static_configs, 1);
    }

    #[test]
    fn thawed_mutation_never_touches_the_snapshot() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();
        let (cfgs, nodes) = (snap.config_count(), snap.node_count());

        let mut w = PActionCache::from_snapshot(&snap);
        record(&mut w, b"B", 2);
        record(&mut w, b"C", 3);
        w.flush();
        record(&mut w, b"D", 4);

        assert_eq!(snap.config_count(), cfgs);
        assert_eq!(snap.node_count(), nodes);
        assert_eq!(snap.stats().static_configs, 1);
    }

    #[test]
    fn merge_copies_new_configs_and_dedupes_existing() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();

        // Worker 1 learns B; worker 2 learns B (differently!) and C.
        let mut w1 = PActionCache::from_snapshot(&snap);
        record(&mut w1, b"B", 10);
        let d1 = w1.freeze();
        let mut w2 = PActionCache::from_snapshot(&snap);
        record(&mut w2, b"B", 99);
        record(&mut w2, b"C", 30);
        let d2 = w2.freeze();

        let o1 = master.merge_from(&d1);
        assert_eq!(o1.configs_added, 1);
        assert_eq!(o1.configs_deduped, 0);
        let o2 = master.merge_from(&d2);
        assert_eq!(o2.configs_added, 1, "only C is new");
        assert_eq!(o2.configs_deduped, 1, "B already merged: first writer wins");

        // First writer won: B replays worker 1's chain.
        match master.register_config(b"B") {
            ConfigLookup::Hit(id) => assert_eq!(master.kind(id), advance(10)),
            ConfigLookup::Miss => panic!("B must be cached"),
        }
        match master.register_config(b"C") {
            ConfigLookup::Hit(id) => assert_eq!(master.kind(id), advance(30)),
            ConfigLookup::Miss => panic!("C must be cached"),
        }
    }

    #[test]
    fn merge_twice_is_idempotent() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();
        let mut w = PActionCache::from_snapshot(&snap);
        record(&mut w, b"B", 2);
        // Also graft a branch onto an inherited node: replay A, then record
        // a fresh outcome path... via an outcome-bearing chain.
        assert!(matches!(w.register_config(b"L"), ConfigLookup::Miss));
        let load = w.record_action(ActionKind::IssueLoad { lq_index: 0 });
        w.set_outcome(load, OutcomeKey::Interval(6));
        w.record_action(ActionKind::Finish);
        let delta = w.freeze();

        let first = master.merge_from(&delta);
        assert!(!first.is_noop());
        let snap_after = master.freeze();
        let second = master.merge_from(&delta);
        assert!(second.is_noop(), "second merge must copy nothing: {second:?}");
        let snap_final = master.freeze();
        assert_eq!(snap_after.node_count(), snap_final.node_count());
        assert_eq!(snap_after.config_count(), snap_final.config_count());
        assert_eq!(*snap_after.stats(), *snap_final.stats());
    }

    #[test]
    fn merge_grafts_new_outcome_branches_on_inherited_nodes() {
        // Master has a load with one known outcome.
        let mut master = PActionCache::new(Policy::Unbounded);
        assert!(matches!(master.register_config(b"A"), ConfigLookup::Miss));
        let load = master.record_action(ActionKind::IssueLoad { lq_index: 0 });
        master.set_outcome(load, OutcomeKey::Interval(2));
        master.record_action(ActionKind::Finish);
        let snap = master.freeze();

        // Worker replays A, sees an unseen interval, records the new path.
        let mut w = PActionCache::from_snapshot(&snap);
        let head = match w.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!(),
        };
        assert_eq!(w.branch_to(head, OutcomeKey::Interval(6)), None);
        w.resume_recording_at(head, Some(OutcomeKey::Interval(6)));
        w.record_action(advance(6));
        w.record_action(ActionKind::Finish);
        let delta = w.freeze();

        let out = master.merge_from(&delta);
        assert_eq!(out.branches_grafted, 1);
        assert_eq!(out.actions_added, 2, "advance(6) + Finish copied");
        assert_eq!(out.configs_added, 0);

        // The master now replays both outcomes.
        let head = match master.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!(),
        };
        let hit = master.branch_to(head, OutcomeKey::Interval(2)).expect("old branch");
        assert_eq!(master.kind(hit), ActionKind::Finish);
        let miss = master.branch_to(head, OutcomeKey::Interval(6)).expect("grafted branch");
        assert_eq!(master.kind(miss), advance(6));
        // Idempotent here too.
        assert!(master.merge_from(&delta).is_noop());
    }

    #[test]
    fn merge_after_worker_flush_still_recovers_new_configs() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();
        let mut w = PActionCache::from_snapshot(&snap);
        w.flush(); // base correspondence gone (frozen_base = 0)
        record(&mut w, b"B", 2);
        record(&mut w, b"A", 9); // re-learned after the flush
        let delta = w.freeze();
        assert_eq!(delta.base_len(), 0);

        let out = master.merge_from(&delta);
        assert_eq!(out.configs_added, 1, "only B; A keeps the master's chain");
        assert_eq!(out.configs_deduped, 1);
        match master.register_config(b"A") {
            ConfigLookup::Hit(id) => assert_eq!(master.kind(id), advance(1)),
            ConfigLookup::Miss => panic!(),
        }
        match master.register_config(b"B") {
            ConfigLookup::Hit(id) => assert_eq!(master.kind(id), advance(2)),
            ConfigLookup::Miss => panic!(),
        }
    }

    #[test]
    fn merge_accounts_only_copied_material() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let before = *master.stats();
        let snap = master.freeze();

        let mut w = PActionCache::from_snapshot(&snap);
        record(&mut w, b"B", 2);
        let delta = w.freeze();

        let out = master.merge_from(&delta);
        let after = *master.stats();
        assert_eq!(after.static_configs, before.static_configs + out.configs_added);
        assert_eq!(after.static_actions, before.static_actions + out.actions_added);
        assert_eq!(after.bytes, before.bytes + out.bytes_added);
        // The worker's own lookup counters stay with the worker; merging is
        // about content, not traffic.
        assert_eq!(after.config_hits, before.config_hits);
        assert_eq!(after.config_misses, before.config_misses);
    }

    #[test]
    fn freeze_if_newer_skips_quiet_periods() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();
        assert!(!master.dirty_since(&snap));
        assert!(master.freeze_if_newer(&snap).is_none(), "nothing changed: keep `snap`");

        // A worker learns B; merging its delta dirties the master...
        let mut w = PActionCache::from_snapshot(&snap);
        record(&mut w, b"B", 2);
        let delta = w.freeze();
        assert!(!master.merge_from(&delta).is_noop());
        assert!(master.dirty_since(&snap));
        let snap2 = master.freeze_if_newer(&snap).expect("merge must dirty the master");
        assert_eq!(snap2.config_count(), 2);

        // ...but re-merging the same delta is a no-op and stays clean.
        assert!(master.merge_from(&delta).is_noop());
        assert!(!master.dirty_since(&snap2));
        assert!(master.freeze_if_newer(&snap2).is_none());
    }

    #[test]
    fn merge_imports_eligible_worker_segments() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();
        assert_eq!(snap.trace_count(), 0);

        // The worker compiles A's chain (base-prefix nodes only) and also
        // records + compiles a brand-new config B (delta-side nodes).
        let mut w = PActionCache::from_snapshot(&snap);
        w.set_hotness_threshold(0);
        let a = match w.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!("A is frozen"),
        };
        assert!(w.trace_enter(a).is_some());
        record(&mut w, b"B", 2);
        let b = match w.register_config(b"B") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!("B was just recorded"),
        };
        assert!(w.trace_enter(b).is_some());
        let delta = w.freeze();
        assert_eq!(delta.trace_count(), 2);

        // A's segment imports (entirely in the base prefix); B's segment
        // references delta-side ids that relocate, so it is skipped.
        let out = master.merge_from(&delta);
        assert_eq!(out.segments_imported, 1);
        assert_eq!(master.trace_count(), 1);
        assert!(master.traces[a as usize].is_some());

        // Re-merging imports nothing (first writer wins) and is a no-op.
        let again = master.merge_from(&delta);
        assert!(again.is_noop());
        assert_eq!(again.segments_imported, 0);

        // A refreeze ships the imported segment; a thaw revives it.
        let snap2 = master.freeze();
        assert_eq!(snap2.trace_count(), 1);
        let thawed = PActionCache::from_snapshot(&snap2);
        assert_eq!(thawed.trace_count(), 1);
        assert_eq!(thawed.stats().segments_thawed, 1);
    }

    #[test]
    fn merged_warmth_bumps_the_version_for_refreeze() {
        let mut master = PActionCache::new(Policy::Unbounded);
        record(&mut master, b"A", 1);
        let snap = master.freeze();

        // The worker adds no new content — it only replays A hot enough
        // to compile a segment. The merge must still dirty the master, or
        // freeze_if_newer would never ship the imported warmth.
        let mut w = PActionCache::from_snapshot(&snap);
        w.set_hotness_threshold(0);
        let a = match w.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!("A is frozen"),
        };
        assert!(w.trace_enter(a).is_some());
        let delta = w.freeze();

        let out = master.merge_from(&delta);
        assert!(out.is_noop(), "no nodes/configs/branches copied: {out:?}");
        assert_eq!(out.segments_imported, 1);
        let snap2 = master.freeze_if_newer(&snap).expect("imported warmth dirties the master");
        assert_eq!(snap2.trace_count(), 1);
        // Re-merge: nothing new, stays clean.
        assert!(master.merge_from(&delta).is_noop());
        assert!(master.freeze_if_newer(&snap2).is_none());
    }

    #[test]
    fn merge_foreign_imports_a_crossed_lineage() {
        // Two independent caches — different lineages, overlapping keys.
        let mut local = PActionCache::new(Policy::Unbounded);
        record(&mut local, b"A", 1);
        record(&mut local, b"B", 2);
        let mut peer = PActionCache::new(Policy::Unbounded);
        record(&mut peer, b"B", 99); // conflicting chain for B
        record(&mut peer, b"C", 3);
        let shipped = peer.freeze();

        let out = local.merge_foreign(&shipped);
        assert_eq!(out.configs_added, 1, "only C is new");
        assert_eq!(out.configs_deduped, 1, "local B wins");
        assert_eq!(out.branches_grafted, 0, "nothing grafts across lineages");
        match local.register_config(b"B") {
            ConfigLookup::Hit(id) => assert_eq!(local.kind(id), advance(2)),
            ConfigLookup::Miss => panic!("B must stay cached"),
        }
        match local.register_config(b"C") {
            ConfigLookup::Hit(id) => assert_eq!(local.kind(id), advance(3)),
            ConfigLookup::Miss => panic!("C must be imported"),
        }
        // Idempotent, like merge_from.
        assert!(local.merge_foreign(&shipped).is_noop());

        // A non-zero base_len snapshot must not graft when merged foreign:
        // the base prefix is a descendant of *peer*, not of `local`.
        let mut w = PActionCache::from_snapshot(&shipped);
        record(&mut w, b"D", 4);
        let delta = w.freeze();
        assert!(delta.base_len() > 0);
        let out = local.merge_foreign(&delta);
        assert_eq!(out.configs_added, 1, "only D is new");
        match local.register_config(b"D") {
            ConfigLookup::Hit(id) => assert_eq!(local.kind(id), advance(4)),
            ConfigLookup::Miss => panic!("D must be imported"),
        }
    }

    #[test]
    fn merge_foreign_into_empty_equals_thaw_content() {
        let mut src = PActionCache::new(Policy::Unbounded);
        record(&mut src, b"A", 1);
        record(&mut src, b"B", 2);
        let snap = src.freeze();

        let mut fresh = PActionCache::new(Policy::Unbounded);
        let out = fresh.merge_foreign(&snap);
        assert_eq!(out.configs_added, 2);
        assert_eq!(out.actions_added, 4);
        for (key, cycles) in [(&b"A"[..], 1u32), (&b"B"[..], 2)] {
            match fresh.register_config(key) {
                ConfigLookup::Hit(id) => assert_eq!(fresh.kind(id), advance(cycles)),
                ConfigLookup::Miss => panic!("{key:?} must be present"),
            }
        }
    }

    #[test]
    fn chains_crossing_config_boundaries_merge_intact() {
        // Worker records A -> B as one unbroken chain (B's head is A's
        // chain successor, paper §4.2).
        let mut master = PActionCache::new(Policy::Unbounded);
        let snap = master.freeze();
        let mut w = PActionCache::from_snapshot(&snap);
        assert!(matches!(w.register_config(b"A"), ConfigLookup::Miss));
        let _a1 = w.record_action(advance(3));
        assert!(matches!(w.register_config(b"B"), ConfigLookup::Miss));
        w.record_action(advance(1));
        w.record_action(ActionKind::Finish);
        let delta = w.freeze();

        let out = master.merge_from(&delta);
        assert_eq!(out.configs_added, 2);
        assert_eq!(out.actions_added, 3);
        let a1 = match master.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!(),
        };
        let b1 = master.advance(a1).expect("chain crosses into B");
        assert_eq!(master.config_at(b1), Some(&b"B"[..]));
        assert_eq!(master.kind(b1), advance(1));
    }
}
