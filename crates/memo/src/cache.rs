//! The p-action cache data structure.

use crate::action::{ActionKind, NodeId, OutcomeKey};
use crate::index::{ConfigIndex, ConfigRef};
use crate::policy::Policy;
use crate::trace::{TraceSegment, DEFAULT_HOTNESS_THRESHOLD};
use fastsim_hash::hash64;
use std::sync::Arc;

/// Per-outcome-branch modeled overhead in bytes (key + link).
pub(crate) const BRANCH_BYTES: usize = 12;
/// Per-configuration modeled overhead beyond the encoded bytes (hash-table
/// entry and head link).
pub(crate) const CONFIG_OVERHEAD_BYTES: usize = 24;

/// Successor links of an action node.
#[derive(Clone, Debug)]
pub(crate) enum Successors {
    /// Outcome-less action: at most one successor.
    Single(Option<NodeId>),
    /// Outcome-bearing action: one successor per observed outcome.
    Multi(Vec<(OutcomeKey, NodeId)>),
}

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) kind: ActionKind,
    pub(crate) next: Successors,
    /// If this node is the first action of a configuration, where the
    /// encoded configuration bytes live in the cache's
    /// [`ConfigIndex`] arena (offset + length + fingerprint).
    pub(crate) config: Option<ConfigRef>,
    /// Survived at least one minor collection (generational GC).
    pub(crate) tenured: bool,
}

/// Where the next recorded action will be linked from.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Attach {
    /// Nothing to link from (start of simulation, or after a flush).
    None,
    /// Fill the single successor of this node.
    Next(NodeId),
    /// Add an outcome branch to this node.
    Branch(NodeId, OutcomeKey),
}

/// Result of looking up a configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigLookup {
    /// The configuration is cached; fast-forwarding can replay from this
    /// node (its first action).
    Hit(NodeId),
    /// New configuration: detailed simulation continues, and the next
    /// recorded action becomes the configuration's first action.
    Miss,
}

/// Counters for the memoization measurements of Table 5 and §5.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemoStats {
    /// Configurations allocated over the whole run (static count;
    /// cumulative across flushes/collections).
    pub static_configs: u64,
    /// Actions allocated over the whole run.
    pub static_actions: u64,
    /// Current modeled cache size in bytes.
    pub bytes: usize,
    /// Largest modeled size reached.
    pub peak_bytes: usize,
    /// Cache flushes performed (flush-on-full policy).
    pub flushes: u64,
    /// Garbage collections performed.
    pub collections: u64,
    /// Bytes that survived collections (for the survival-rate statistic;
    /// the paper reports ~18% on average).
    pub gc_survived_bytes: u64,
    /// Bytes examined by collections.
    pub gc_scanned_bytes: u64,
    /// Configuration lookups that hit a cached chain.
    pub config_hits: u64,
    /// Configuration lookups that missed (detailed simulation recorded a
    /// new chain).
    pub config_misses: u64,
    /// Hot chains compiled into linear trace segments.
    pub trace_segments_compiled: u64,
    /// Replay entries that executed a compiled trace segment instead of
    /// walking the chain node-at-a-time.
    pub replay_segments_entered: u64,
    /// Compact trace ops executed during segment replay (compare with
    /// `SimStats::replayed_actions` for the aggregation factor).
    pub replay_trace_ops: u64,
    /// Segment executions that exited early back to node-at-a-time replay
    /// (a cold or unseen outcome, or a chain cut).
    pub replay_bailouts: u64,
    /// Segment exits that continued directly into another compiled segment
    /// through a chain link instead of bailing out to node-at-a-time
    /// replay (superblock chaining).
    pub chained_exits: u64,
    /// Chained transitions that went through an already-patched chain link
    /// — the segment→segment fast path. First-time transitions patch the
    /// link and count only in
    /// [`chained_exits`](MemoStats::chained_exits).
    pub chain_follows: u64,
    /// Compiled segments revived from a snapshot at thaw (after
    /// fingerprint revalidation) instead of being recompiled from scratch.
    pub segments_thawed: u64,
}

impl MemoStats {
    /// Fraction of the cache surviving each collection, averaged by bytes.
    pub fn gc_survival_rate(&self) -> f64 {
        if self.gc_scanned_bytes == 0 {
            0.0
        } else {
            self.gc_survived_bytes as f64 / self.gc_scanned_bytes as f64
        }
    }

    /// Fraction of configuration lookups that hit the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.config_hits + self.config_misses;
        if total == 0 {
            0.0
        } else {
            self.config_hits as f64 / total as f64
        }
    }
}

/// The p-action cache. See the [crate documentation](crate) for the model.
///
/// # Example
///
/// ```
/// use fastsim_memo::{ActionKind, ConfigLookup, OutcomeKey, PActionCache, Policy, RetireCounts};
///
/// let mut pc = PActionCache::new(Policy::Unbounded);
/// // First visit: miss, record the configuration's actions.
/// assert_eq!(pc.register_config(b"config-A"), ConfigLookup::Miss);
/// let advance = pc.record_action(ActionKind::Advance {
///     cycles: 6,
///     retired: RetireCounts::default(),
/// });
/// let load = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
/// pc.set_outcome(load, OutcomeKey::Interval(6));
/// // Second visit: hit — fast-forwarding replays from the first action.
/// assert_eq!(pc.register_config(b"config-A"), ConfigLookup::Hit(advance));
/// ```
#[derive(Clone, Debug)]
pub struct PActionCache {
    pub(crate) nodes: Vec<Node>,
    /// Accessed-since-last-collection bits (GC liveness, paper §4.3),
    /// parallel to `nodes`. Kept out of `Node` deliberately: replay marks
    /// a node per action, and a dense side array means those writes touch
    /// one byte per node instead of dirtying the fat `Node` cache lines —
    /// and lets trace segments mark whole contiguous runs with a slice
    /// fill (see [`mark_accessed_span`](PActionCache::mark_accessed_span)).
    pub(crate) accessed: Vec<bool>,
    pub(crate) index: ConfigIndex,
    pub(crate) policy: Policy,
    attach: Attach,
    /// Fingerprint of a registered-but-not-yet-headed configuration; its
    /// bytes sit in `pending_bytes`. The fingerprint was computed by the
    /// miss in [`register_config`](PActionCache::register_config) and is
    /// reused verbatim by the insert in
    /// [`record_action`](PActionCache::record_action) — the miss path
    /// hashes exactly once.
    pending_fp: Option<u64>,
    /// Reusable buffer for the pending configuration's bytes (kept out of
    /// the arena until the head action exists, so flushes can preserve a
    /// pending configuration while dropping the arena).
    pending_bytes: Vec<u8>,
    pub(crate) stats: MemoStats,
    /// Number of leading nodes inherited from a
    /// [`CacheSnapshot`](crate::CacheSnapshot) by
    /// [`from_snapshot`](PActionCache::from_snapshot); `0` for a cache
    /// built from scratch. Reset to `0` by flushes and collections, which
    /// invalidate the id correspondence with the snapshot.
    pub(crate) frozen_base: usize,
    /// Compiled linear replay segments, parallel to `nodes` (`Some` only
    /// at configuration heads whose chains ran hot; see [`crate::trace`]).
    /// A dense slot per node instead of a hash map: replay crosses a
    /// configuration head every interaction cycle, and the lookup must be
    /// one indexed load, not a probe. Shared by `Arc` so the engine can
    /// execute a segment while marking nodes accessed through `&mut self`.
    pub(crate) traces: Vec<Option<Arc<TraceSegment>>>,
    /// Replay-entry counts feeding the trace compiler's hotness decision,
    /// parallel to `nodes` (meaningful only at configuration heads).
    pub(crate) hotness: Vec<u32>,
    /// Entries before a chain is compiled (see
    /// [`set_hotness_threshold`](PActionCache::set_hotness_threshold)).
    pub(crate) hotness_threshold: u32,
    /// Chain-link stamps, parallel to `nodes`: a stamp equal to
    /// `chain_epoch` marks a patched segment→segment link at this node —
    /// a segment exiting through a carried cold edge (or a cut) whose
    /// target carries this stamp continues directly in the target's
    /// compiled segment without touching the node arena. Bumping the
    /// epoch severs every link at once; links follow the same
    /// flush/collect/merge discipline as the segments themselves. Not
    /// counted in modeled cache bytes (side table, like `traces`).
    pub(crate) chain_stamp: Vec<u32>,
    /// The epoch `chain_stamp` entries are valid against (never `0`, so a
    /// zeroed stamp is always unpatched).
    pub(crate) chain_epoch: u32,
    /// Whether segment exits may chain directly into other compiled
    /// segments (see [`set_chaining`](PActionCache::set_chaining)).
    pub(crate) chaining: bool,
    /// Adaptive hotness: global replay-entry clock, paired with
    /// `last_seen`. A head re-entered within [`crate::trace`]'s recency
    /// window weighs more per entry, so tight replay loops promote after
    /// a handful of entries while one-off heads never pay compile cost.
    pub(crate) entry_clock: u32,
    /// Per-node `entry_clock` value (plus one; `0` = never entered) at the
    /// node's previous hotness-counted entry, parallel to `nodes`.
    pub(crate) last_seen: Vec<u32>,
    /// Trace-compiler scratch: per-node op-start indices, valid when the
    /// stamp matches `compile_epoch`. Reused across compiles so each
    /// compile pays neither hash probes nor a per-compile clear.
    pub(crate) compile_stamp: Vec<u32>,
    pub(crate) compile_op: Vec<u32>,
    pub(crate) compile_epoch: u32,
    /// Monotonic counter of *replayable-content* mutations: bumped whenever
    /// nodes, links or configuration keys change (recording, flushes,
    /// collections, merges) — but **not** by replay-side accessed-bit
    /// marking, which only feeds GC liveness. [`freeze`](PActionCache::freeze)
    /// stamps the snapshot with the current version, so a long-lived master
    /// can answer "has anything merged since my last freeze?" in O(1)
    /// ([`dirty_since`](PActionCache::dirty_since)) and skip redundant
    /// re-freezes (see [`freeze_if_newer`](PActionCache::freeze_if_newer)).
    pub(crate) version: u64,
}

impl PActionCache {
    /// Creates an empty cache with the given replacement policy.
    pub fn new(policy: Policy) -> PActionCache {
        PActionCache {
            nodes: Vec::new(),
            accessed: Vec::new(),
            index: ConfigIndex::new(),
            policy,
            attach: Attach::None,
            pending_fp: None,
            pending_bytes: Vec::new(),
            stats: MemoStats::default(),
            frozen_base: 0,
            traces: Vec::new(),
            hotness: Vec::new(),
            hotness_threshold: DEFAULT_HOTNESS_THRESHOLD,
            chain_stamp: Vec::new(),
            chain_epoch: 1,
            chaining: true,
            entry_clock: 0,
            last_seen: Vec::new(),
            compile_stamp: Vec::new(),
            compile_op: Vec::new(),
            compile_epoch: 0,
            version: 0,
        }
    }

    /// The cache's replayable-content version (see the field docs on
    /// [`PActionCache`]): two calls return different values iff nodes,
    /// links or configuration keys changed in between. Accessed-bit
    /// (GC-liveness) updates do not count.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether this cache's replayable content changed since `snapshot`
    /// was frozen *from this cache's lineage*. Only meaningful for
    /// snapshots produced by this cache (or its clones): version counters
    /// of unrelated caches are not comparable.
    pub fn dirty_since(&self, snapshot: &crate::CacheSnapshot) -> bool {
        self.version != snapshot.version()
    }

    /// The replacement policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Memoization counters.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Number of configurations currently cached.
    pub fn config_count(&self) -> usize {
        self.index.len()
    }

    /// Number of action nodes currently in the arena (including any that
    /// became unreachable after flushes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn add_bytes(&mut self, n: usize) {
        self.stats.bytes += n;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes);
    }

    /// Looks up the configuration snapshot taken at the end of an
    /// interaction cycle.
    ///
    /// On a hit, the pending action chain is linked to the cached
    /// configuration's first action (forming the paper's "unbroken chain of
    /// actions") and fast-forwarding can replay from the returned node. On
    /// a miss, the next action recorded becomes the configuration's first
    /// action. A miss is also when the replacement policy runs.
    pub fn register_config(&mut self, bytes: &[u8]) -> ConfigLookup {
        // The hit path is the simulator's innermost loop: one hash, one
        // probe sequence, zero allocations.
        let fp = hash64(bytes);
        if let Some(head) = self.index.lookup(fp, bytes) {
            self.stats.config_hits += 1;
            self.link_attach(head);
            self.attach = Attach::None;
            self.accessed[head as usize] = true;
            return ConfigLookup::Hit(head);
        }
        self.stats.config_misses += 1;
        self.enforce_policy();
        self.pending_bytes.clear();
        self.pending_bytes.extend_from_slice(bytes);
        self.pending_fp = Some(fp);
        ConfigLookup::Miss
    }

    /// Records one action performed by the detailed simulator, linking it
    /// after the previously recorded action (or outcome branch). Returns
    /// the node id — needed to bind an outcome with
    /// [`set_outcome`](PActionCache::set_outcome).
    pub fn record_action(&mut self, kind: ActionKind) -> NodeId {
        self.version += 1;
        let id = self.nodes.len() as NodeId;
        let next = if kind.has_outcome() {
            Successors::Multi(Vec::new())
        } else {
            Successors::Single(None)
        };
        self.nodes.push(Node { kind, next, config: None, tenured: false });
        self.accessed.push(true);
        self.traces.push(None);
        self.hotness.push(0);
        self.chain_stamp.push(0);
        self.last_seen.push(0);
        self.add_bytes(kind.modeled_bytes());
        self.stats.static_actions += 1;
        self.link_attach(id);
        if let Some(fp) = self.pending_fp.take() {
            // The fingerprint from the registering miss is reused — the
            // insert probes but never rehashes the bytes.
            let cref = self.index.insert(fp, &self.pending_bytes, id);
            self.nodes[id as usize].config = Some(cref);
            self.add_bytes(self.pending_bytes.len() + CONFIG_OVERHEAD_BYTES);
            self.stats.static_configs += 1;
        }
        self.attach = match kind {
            ActionKind::Finish => Attach::None,
            k if k.has_outcome() => Attach::None, // bound by set_outcome
            _ => Attach::Next(id),
        };
        id
    }

    /// Binds the observed outcome of the outcome-bearing action `id`; the
    /// next recorded action (or configuration hit) becomes the successor
    /// for that outcome.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `id` does not carry outcomes or this outcome is
    /// already bound (the engine should have replayed it instead).
    pub fn set_outcome(&mut self, id: NodeId, key: OutcomeKey) {
        debug_assert!(self.nodes[id as usize].kind.has_outcome());
        debug_assert!(
            self.branch_to(id, key).is_none(),
            "outcome {key:?} already recorded for node {id}"
        );
        self.attach = Attach::Branch(id, key);
    }

    /// Re-arms recording at a replayed node whose successor was missing:
    /// with `Some(key)`, new actions become that outcome's branch; with
    /// `None`, they fill the node's single successor link (possible after
    /// a collection dropped it).
    pub fn resume_recording_at(&mut self, id: NodeId, key: Option<OutcomeKey>) {
        self.attach = match key {
            Some(k) => Attach::Branch(id, k),
            None => Attach::Next(id),
        };
    }

    fn link_attach(&mut self, to: NodeId) {
        if self.attach != Attach::None {
            self.version += 1;
        }
        match std::mem::replace(&mut self.attach, Attach::None) {
            Attach::None => {}
            Attach::Next(p) => match &mut self.nodes[p as usize].next {
                Successors::Single(slot) => *slot = Some(to),
                Successors::Multi(_) => unreachable!("Next attach on branching node"),
            },
            Attach::Branch(p, key) => match &mut self.nodes[p as usize].next {
                Successors::Multi(branches) => {
                    debug_assert!(branches.iter().all(|(k, _)| *k != key));
                    branches.push((key, to));
                    self.add_bytes(BRANCH_BYTES);
                }
                Successors::Single(_) => unreachable!("Branch attach on single node"),
            },
        }
    }

    // --- Replay navigation ------------------------------------------------

    /// The action stored at `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> ActionKind {
        self.nodes[id as usize].kind
    }

    /// If `id` is a configuration's first action, the encoded
    /// configuration bytes.
    #[inline]
    pub fn config_at(&self, id: NodeId) -> Option<&[u8]> {
        self.nodes[id as usize].config.map(|r| self.index.bytes_at(r))
    }

    /// Follows the single successor of an outcome-less action, marking the
    /// target accessed. `None` means the chain ends here (recording was
    /// interrupted or a collection dropped the tail).
    #[inline]
    pub fn advance(&mut self, id: NodeId) -> Option<NodeId> {
        let next = match &self.nodes[id as usize].next {
            Successors::Single(n) => *n,
            Successors::Multi(_) => {
                unreachable!("advance on outcome-bearing node; use branch_to")
            }
        };
        if let Some(n) = next {
            self.accessed[n as usize] = true;
        }
        next
    }

    /// Follows the successor recorded for `key`, marking the target
    /// accessed. `None` terminates fast-forwarding (unseen outcome).
    #[inline]
    pub fn branch_to(&mut self, id: NodeId, key: OutcomeKey) -> Option<NodeId> {
        let next = match &self.nodes[id as usize].next {
            Successors::Multi(branches) => {
                branches.iter().find(|(k, _)| *k == key).map(|(_, n)| *n)
            }
            Successors::Single(_) => unreachable!("branch_to on single-successor node"),
        };
        if let Some(n) = next {
            self.accessed[n as usize] = true;
        }
        next
    }

    /// Number of outcome branches recorded at `id` (statistics).
    pub fn branch_count(&self, id: NodeId) -> usize {
        match &self.nodes[id as usize].next {
            Successors::Multi(b) => b.len(),
            Successors::Single(_) => 0,
        }
    }

    // --- Replacement policies ----------------------------------------------

    fn enforce_policy(&mut self) {
        let Some(limit) = self.policy.limit() else { return };
        if self.stats.bytes <= limit {
            return;
        }
        match self.policy {
            Policy::FlushOnFull { .. } => self.flush(),
            Policy::CopyingGc { .. } => self.collect(false),
            Policy::GenerationalGc { .. } => {
                self.collect(true);
                if self.stats.bytes > limit {
                    self.collect(false);
                }
            }
            Policy::Unbounded => unreachable!(),
        }
    }

    /// Discards the entire cache (the flush-on-full policy's action).
    pub fn flush(&mut self) {
        self.version += 1;
        self.nodes.clear();
        self.accessed.clear();
        self.index.clear();
        self.attach = Attach::None;
        // A pending configuration (registered but head not yet recorded)
        // stays pending: its bytes live in `pending_bytes`, outside the
        // arena, so its first action will insert it into the fresh index.
        self.stats.bytes = 0;
        self.stats.flushes += 1;
        self.frozen_base = 0;
        self.invalidate_traces();
    }

    /// Runs a collection. `minor` keeps accessed and tenured nodes
    /// (generational nursery collection); otherwise only accessed nodes
    /// survive (full copying collection). Links into collected space are
    /// cut; replay falls back to detailed simulation when it reaches one.
    pub fn collect(&mut self, minor: bool) {
        self.version += 1;
        let scanned = self.stats.bytes;
        // Node ids are contiguous arena indices, so the forwarding table
        // is a dense vector — a HashMap here would hash every node id for
        // nothing.
        let mut forwarding: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if self.accessed[i] || (minor && node.tenured) {
                forwarding[i] = Some(new_nodes.len() as NodeId);
                new_nodes.push(node.clone());
            }
        }
        let mut bytes = 0usize;
        for node in &mut new_nodes {
            match &mut node.next {
                Successors::Single(slot) => {
                    *slot = slot.and_then(|t| forwarding[t as usize]);
                }
                Successors::Multi(branches) => {
                    branches.retain_mut(|(_, t)| match forwarding[*t as usize] {
                        Some(nt) => {
                            *t = nt;
                            true
                        }
                        None => false,
                    });
                }
            }
            bytes += node.kind.modeled_bytes();
            if let Successors::Multi(b) = &node.next {
                bytes += b.len() * BRANCH_BYTES;
            }
            node.tenured = true;
        }
        // Compact the byte arena alongside the nodes: surviving
        // configurations are copied into a fresh arena (carrying their
        // stored fingerprints — nothing is rehashed) and dead ones vanish
        // with the old arena.
        let old_index = std::mem::take(&mut self.index);
        let mut new_index = ConfigIndex::new();
        for (i, node) in new_nodes.iter_mut().enumerate() {
            if let Some(r) = node.config {
                node.config =
                    Some(new_index.insert(r.fp, old_index.bytes_at(r), i as NodeId));
            }
        }
        // Modeled configuration bytes come straight from the compacted
        // arena's occupancy (identical, by construction, to summing the
        // survivors' lengths).
        bytes += new_index.arena_bytes() + new_index.len() * CONFIG_OVERHEAD_BYTES;
        self.attach = match std::mem::replace(&mut self.attach, Attach::None) {
            Attach::Next(p) => {
                forwarding[p as usize].map_or(Attach::None, Attach::Next)
            }
            Attach::Branch(p, k) => {
                forwarding[p as usize].map_or(Attach::None, |np| Attach::Branch(np, k))
            }
            Attach::None => Attach::None,
        };
        // Survivors start the next GC epoch unmarked.
        self.accessed = vec![false; new_nodes.len()];
        self.nodes = new_nodes;
        self.index = new_index;
        self.frozen_base = 0;
        // Compiled segments hold pre-collection node ids: drop them (they
        // re-compile once their chains run hot again).
        self.invalidate_traces();
        self.stats.bytes = bytes;
        self.stats.collections += 1;
        self.stats.gc_scanned_bytes += scanned as u64;
        self.stats.gc_survived_bytes += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::RetireCounts;

    fn advance(n: u32) -> ActionKind {
        ActionKind::Advance { cycles: n, retired: RetireCounts::default() }
    }

    #[test]
    fn record_and_replay_chain() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let a1 = pc.record_action(advance(3));
        let a2 = pc.record_action(ActionKind::IssueStore { sq_index: 0 });
        assert_eq!(pc.register_config(b"B"), ConfigLookup::Miss);
        let b1 = pc.record_action(advance(1));
        pc.record_action(ActionKind::Finish);
        // Replay A: chain a1 -> a2 -> b1 (crossing the config boundary).
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Hit(a1));
        assert_eq!(pc.kind(a1), advance(3));
        assert_eq!(pc.advance(a1), Some(a2));
        assert_eq!(pc.advance(a2), Some(b1));
        assert_eq!(pc.config_at(b1), Some(&b"B"[..]));
        assert_eq!(pc.config_at(a2), None);
    }

    #[test]
    fn outcome_branches_grow_lazily() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let a1 = pc.record_action(advance(1));
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
        pc.set_outcome(load, OutcomeKey::Interval(2));
        let hit_path = pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        // Replay: outcome 2 is known, outcome 6 is not.
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Hit(a1));
        assert_eq!(pc.advance(a1), Some(load));
        assert_eq!(pc.branch_to(load, OutcomeKey::Interval(2)), Some(hit_path));
        assert_eq!(pc.branch_to(load, OutcomeKey::Interval(6)), None);
        // Record the new outcome's branch (paper Figure 6).
        pc.resume_recording_at(load, Some(OutcomeKey::Interval(6)));
        let miss_path = pc.record_action(advance(6));
        assert_eq!(pc.branch_to(load, OutcomeKey::Interval(6)), Some(miss_path));
        assert_eq!(pc.branch_count(load), 2);
    }

    #[test]
    fn stats_track_allocation() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        pc.register_config(b"A");
        pc.record_action(advance(1));
        pc.record_action(ActionKind::Finish);
        let s = *pc.stats();
        assert_eq!(s.static_configs, 1);
        assert_eq!(s.static_actions, 2);
        assert!(s.bytes > 0);
        assert_eq!(s.peak_bytes, s.bytes);
    }

    #[test]
    fn flush_on_full_discards_everything() {
        let mut pc = PActionCache::new(Policy::FlushOnFull { limit: 200 });
        let mut misses = 0;
        for i in 0..100u32 {
            let key = i.to_le_bytes();
            if pc.register_config(&key) == ConfigLookup::Miss {
                misses += 1;
                pc.record_action(advance(1));
            }
        }
        assert_eq!(misses, 100);
        assert!(pc.stats().flushes > 0);
        assert!(pc.stats().bytes <= 200 + 100, "bounded near the limit");
        // Cumulative static counters survive flushes.
        assert_eq!(pc.stats().static_configs, 100);
    }

    #[test]
    fn flush_preserves_pending_config() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        pc.flush();
        let head = pc.record_action(advance(1));
        pc.record_action(ActionKind::Finish);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Hit(head));
    }

    #[test]
    fn copying_gc_keeps_accessed_nodes() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        // Config A gets replayed (accessed); config B never again.
        pc.register_config(b"A");
        let a1 = pc.record_action(advance(1));
        pc.register_config(b"B");
        pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        // Age everything, then touch only A.
        pc.collect(false); // clears accessed flags (all were freshly set)
        assert_eq!(pc.config_count(), 2, "fresh nodes all survive the first collection");
        let hit = pc.register_config(b"A");
        let a1_new = match hit {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!("A must survive"),
        };
        pc.collect(false);
        assert_eq!(pc.config_count(), 1, "B was not accessed and is collected");
        assert_eq!(pc.register_config(b"B"), ConfigLookup::Miss);
        match pc.register_config(b"A") {
            ConfigLookup::Hit(id) => {
                // Still replayable after relocation.
                assert_eq!(pc.kind(id), advance(1));
            }
            ConfigLookup::Miss => panic!("A must survive the second collection"),
        }
        let _ = (a1, a1_new);
    }

    #[test]
    fn gc_cuts_links_to_collected_nodes() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        pc.register_config(b"A");
        let a1 = pc.record_action(advance(1));
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
        pc.set_outcome(load, OutcomeKey::Interval(2));
        pc.register_config(b"B");
        pc.record_action(advance(9));
        pc.record_action(ActionKind::Finish);
        pc.collect(false); // age
        // Touch A's chain but not B.
        let head = match pc.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            _ => panic!(),
        };
        let load_id = pc.advance(head).unwrap();
        pc.collect(false);
        // B's head was collected: the branch from `load` is cut.
        let head = match pc.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            _ => panic!("A survives"),
        };
        let load_id2 = pc.advance(head).unwrap();
        assert_eq!(pc.branch_to(load_id2, OutcomeKey::Interval(2)), None);
        let _ = (a1, load_id);
    }

    #[test]
    fn generational_minor_keeps_tenured() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        pc.register_config(b"A");
        pc.record_action(advance(1));
        pc.collect(false); // everything tenured, flags cleared
        pc.register_config(b"B");
        pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        // Minor collection: tenured A survives even though untouched this
        // epoch; fresh B (accessed) survives too.
        pc.collect(true);
        assert_eq!(pc.config_count(), 2);
        // Full collection now drops both (nothing accessed since).
        pc.collect(false);
        assert_eq!(pc.config_count(), 0);
    }

    #[test]
    fn survival_rate_reported() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        pc.register_config(b"A");
        pc.record_action(advance(1));
        pc.register_config(b"B");
        pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        pc.collect(false);
        pc.collect(false); // second collection drops everything
        let s = pc.stats();
        assert_eq!(s.collections, 2);
        assert!(s.gc_survival_rate() < 1.0);
    }

    #[test]
    fn gc_policy_triggers_on_miss() {
        let mut pc = PActionCache::new(Policy::CopyingGc { limit: 300 });
        for i in 0..50u32 {
            if pc.register_config(&i.to_le_bytes()) == ConfigLookup::Miss {
                pc.record_action(advance(1));
            }
        }
        assert!(pc.stats().collections > 0);
        assert!(pc.stats().bytes < 50 * 60, "collections bound growth");
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::action::RetireCounts;
    use fastsim_prng::for_each_case;

    /// One step of a random exercise of the cache's recording/replay API.
    #[derive(Clone, Debug)]
    enum Step {
        Register(u8),
        RecordAdvance(u8),
        RecordLoadWithOutcome(u8),
        Flush,
        Collect(bool),
    }

    fn random_step(rng: &mut fastsim_prng::Rng) -> Step {
        match rng.range_u32(0..5) {
            0 => Step::Register(rng.next_u8()),
            1 => Step::RecordAdvance(rng.next_u8()),
            2 => Step::RecordLoadWithOutcome(rng.next_u8()),
            3 => Step::Flush,
            _ => Step::Collect(rng.next_bool()),
        }
    }

    /// Arbitrary interleavings of recording, lookup, flushing and
    /// collection never panic and keep the counters coherent.
    #[test]
    fn random_cache_invariants() {
        for_each_case(0xac710, 256, |seed, rng| {
            let steps: Vec<Step> =
                (0..rng.range_usize(1..80)).map(|_| random_step(rng)).collect();
            let mut pc = PActionCache::new(Policy::Unbounded);
            // The engine's discipline: after an outcome-bearing action,
            // bind the outcome before recording the next action.
            for step in steps {
                match step {
                    Step::Register(k) => {
                        match pc.register_config(&[k]) {
                            ConfigLookup::Hit(n) => {
                                // Navigating from a hit never panics.
                                let kind = pc.kind(n);
                                if !kind.has_outcome() {
                                    let _ = pc.advance(n);
                                } else {
                                    let _ = pc.branch_to(n, OutcomeKey::PollReady);
                                }
                            }
                            ConfigLookup::Miss => {
                                // A miss must be followed by a recorded
                                // head before the next registration of the
                                // same key can hit.
                                pc.record_action(ActionKind::Advance {
                                    cycles: 1,
                                    retired: RetireCounts::default(),
                                });
                            }
                        }
                    }
                    Step::RecordAdvance(c) => {
                        pc.record_action(ActionKind::Advance {
                            cycles: c as u32 + 1,
                            retired: RetireCounts::default(),
                        });
                    }
                    Step::RecordLoadWithOutcome(v) => {
                        let id = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
                        pc.set_outcome(id, OutcomeKey::Interval(v as u32));
                    }
                    Step::Flush => pc.flush(),
                    Step::Collect(minor) => pc.collect(minor),
                }
                let s = pc.stats();
                assert!(pc.config_count() as u64 <= s.static_configs, "seed {seed:#x}");
                assert!(pc.node_count() as u64 <= s.static_actions, "seed {seed:#x}");
                assert!(s.bytes <= s.peak_bytes, "seed {seed:#x}");
                assert!(s.gc_survived_bytes <= s.gc_scanned_bytes, "seed {seed:#x}");
            }
        });
    }

    /// Whatever was registered and still cached replays the same first
    /// action after any number of collections.
    #[test]
    fn random_collection_preserves_replayability() {
        for_each_case(0xc011ec7, 256, |seed, rng| {
            let keys: Vec<u8> =
                (0..rng.range_usize(1..30)).map(|_| rng.next_u8()).collect();
            let mut pc = PActionCache::new(Policy::Unbounded);
            let mut recorded: Vec<(u8, u32)> = Vec::new();
            for (i, &k) in keys.iter().enumerate() {
                if pc.register_config(&[k]) == ConfigLookup::Miss {
                    pc.record_action(ActionKind::Advance {
                        cycles: i as u32 + 1,
                        retired: RetireCounts::default(),
                    });
                    recorded.push((k, i as u32 + 1));
                }
            }
            pc.record_action(ActionKind::Finish);
            pc.collect(false); // everything was just accessed: survives
            for (k, cycles) in recorded {
                match pc.register_config(&[k]) {
                    ConfigLookup::Hit(n) => {
                        assert_eq!(
                            pc.kind(n),
                            ActionKind::Advance { cycles, retired: RetireCounts::default() },
                            "seed {seed:#x}"
                        );
                    }
                    ConfigLookup::Miss => panic!("config lost by collection (seed {seed:#x})"),
                }
                // register_config on a Miss path would expect a pending
                // head; all of these are hits, so no cleanup is needed.
            }
        });
    }
}
