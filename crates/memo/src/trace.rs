//! Trace compilation: flattening hot p-action chains into linear replay
//! segments (the paper's §4 record-then-specialize idea, applied to the
//! replay path itself — compare Embra's translation caches).
//!
//! Node-at-a-time replay pays, per action, a `kind` fetch from the node
//! arena, an `ActionKind` match, and an `advance`/`branch_to` successor
//! resolution (a second random arena access, plus an outcome-edge scan).
//! Once a configuration's chain is *hot* — entered
//! [`hotness_threshold`](PActionCache::hotness_threshold) times — the
//! chain is compiled into a [`TraceSegment`]: one contiguous `Vec` of
//! compact [`TraceOp`]s executed by a linear scan.
//!
//! Compilation rules, chosen so that segment execution is **bit-identical**
//! to node-at-a-time replay (including every `SimStats`/`MemoStats`
//! counter that existed before traces):
//!
//! * Maximal runs of consecutive outcome-less `Advance` actions are
//!   pre-aggregated into one [`TraceOp::Bulk`]: cycles summed,
//!   [`RetireCounts`] merged, and the *logical* action count carried so
//!   `replayed_actions`/`dynamic_actions` still count actions, not ops.
//! * Side-effecting outcome-less actions (`IssueStore`, `CancelLoad`,
//!   `Rollback`) become individual ops with their queue indices
//!   pre-resolved into the op — they cannot be merged across `Advance`s
//!   because stores/cancels observe the *current* cycle count and queue
//!   heads, and retirement pops move those heads.
//! * Each outcome-bearing action (`FetchRecord`/`IssueLoad`/`PollLoad`)
//!   becomes an explicit dispatch op carrying its outcome→target edges as
//!   known at compile time, hot edge (the first recorded one) first: the
//!   hot outcome continues inline to the next op; another carried edge
//!   exits the segment to node-at-a-time replay at its target; an
//!   uncarried outcome exits through the node's *live* edge table (so
//!   edges recorded after compilation are still honoured) and from there
//!   to detailed simulation, exactly like node-at-a-time replay.
//! * A configuration boundary inside the chain sets the `anchored` flag
//!   on the crossed node's own op (a configuration head *is* the first
//!   action of its chain, so the crossing and the action share a node):
//!   execution performs the crossing bookkeeping (fallback anchor,
//!   resume reset, `config_visits`) that node-at-a-time replay performs
//!   when the cursor carries configuration bytes, then the action —
//!   without spending a separate dispatched op on it.
//! * A chain cut — a successor or outcome edge missing at compile time —
//!   ends the segment with [`TraceOp::Cut`] *before* the unreachable
//!   node: the cut node is re-executed node-at-a-time against live links,
//!   so links filled after compilation (by resumed recording or a merge)
//!   behave exactly as without traces.
//! * A cycle in the chain (hot loops) becomes a [`TraceOp::Jump`] back to
//!   the op where the revisited node's ops begin: a hot loop replays
//!   entirely inside one segment with zero per-iteration lookups.
//!
//! Every op records the [`NodeId`]s it covers so execution can set the
//! same `accessed` bits node-at-a-time replay would — GC liveness, and
//! therefore every downstream simulation result, is unchanged.
//!
//! # Superblock chaining
//!
//! A segment exit through a carried cold edge or a cut does not have to
//! bounce through node-at-a-time replay:
//! [`chain_enter`](PActionCache::chain_enter) patches a direct
//! segment→segment link (an epoch-stamped entry in a dense side table)
//! to the exit target's compiled segment, so hot loops and call/return
//! ladders run segment-to-segment without touching the node arena.
//! Targets without a segment are compiled on the spot — the
//! next-executing-tail heuristic from dynamic binary translation:
//! control only reaches a chain target out of an already-hot segment, so
//! the target inherits that hotness instead of re-proving it one bailout
//! at a time. Segments may therefore start at *any* node, not only
//! configuration heads: a mid-chain exit target compiles its own
//! (unanchored-entry) superblock. Chaining is purely a performance
//! feature: the executed per-action work is identical, so simulation
//! results and every architectural statistic are bit-identical with
//! chaining on or off.
//!
//! *Initial* promotion out of node-at-a-time replay
//! ([`trace_enter`](PActionCache::trace_enter)) is adaptive rather than
//! a bare entry count: each entry weighs [`HOT_REENTRY_WEIGHT`] when the
//! node was last entered within [`RECENT_WINDOW`] global entries (a
//! tight replay loop) and `1` otherwise, so genuinely hot heads compile
//! after a handful of entries while heads seen once in a blue moon
//! accumulate slowly toward the same threshold.
//!
//! # Lifecycle
//!
//! Segments never dangle: they are invalidated (together with the hotness
//! counters and chain links) by [`flush`](PActionCache::flush) and
//! [`collect`](PActionCache::collect) — node ids relocate there. Plain
//! appends (new recording) keep existing segments valid by construction:
//! filled links and new edges are only ever *added*, and cuts/uncarried
//! outcomes read the live graph. The same append-only argument lets
//! segments survive [`merge_from`](PActionCache::merge_from) (the master
//! only ever appends) and ride along in [`freeze`](PActionCache::freeze)
//! snapshots: a thawed working copy revives the snapshot's segments after
//! revalidating each against the thawed arena (recomputing
//! [`TraceSegment::fp`] and prefix-checking dispatch edges), and a merge
//! imports the delta's segments that live entirely inside the shared base
//! prefix, so refrozen masters and served warm caches stop recompiling
//! from scratch every merge cycle. Chain links are severed (one epoch
//! bump) on every flush/collect/merge and re-patch on the next
//! segment-to-segment transition; a freeze carries them as per-node bits.

use crate::action::{ActionKind, NodeId, OutcomeKey, RetireCounts};
use crate::cache::{PActionCache, Successors};
use std::sync::Arc;

/// Default hotness threshold: a configuration's chain is trace-compiled
/// after this many replay entries. `0` compiles on first entry;
/// `u32::MAX` disables compilation.
pub const DEFAULT_HOTNESS_THRESHOLD: u32 = 32;

/// Hard cap on compiled ops per segment (bounds compile time and memory
/// for pathological chains; the segment ends with a [`TraceOp::Cut`] and
/// replay continues node-at-a-time).
const MAX_TRACE_OPS: usize = 1024;

/// Adaptive-hotness recency window, in global hotness-counted entries: an
/// entry whose node was last entered at most this many entries ago weighs
/// [`HOT_REENTRY_WEIGHT`] instead of `1`.
pub const RECENT_WINDOW: u32 = 64;

/// Hotness weight of an entry within [`RECENT_WINDOW`] of the node's
/// previous entry.
pub const HOT_REENTRY_WEIGHT: u32 = 4;

/// How a [`TraceOp::Bulk`] records the node ids it covers for `accessed`
/// marking — an 8-byte packed encoding of the two cases exposed by
/// [`TouchedKind`]. A span (`b == u32::MAX`) covers `count` consecutively
/// numbered nodes starting at `a`; otherwise `(a, b)` is a `(start, len)`
/// range into [`TraceSegment::touched`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Touched {
    a: u32,
    b: u32,
}

/// Sentinel `b` value marking a [`Touched`] as a span. A list range can
/// never carry this length: segments are capped at [`MAX_TRACE_OPS`] ops.
const TOUCHED_SPAN: u32 = u32::MAX;

impl Touched {
    /// The run covers consecutively numbered nodes starting at `first` —
    /// the common case for straight-line recordings, marked with a single
    /// slice fill ([`mark_accessed_span`](PActionCache::mark_accessed_span)).
    #[inline]
    pub fn span(first: NodeId) -> Touched {
        Touched { a: first, b: TOUCHED_SPAN }
    }

    /// Arbitrary ids: a `(start, len)` range into
    /// [`TraceSegment::touched`], marked one by one.
    #[inline]
    pub fn list(start: u32, len: u32) -> Touched {
        debug_assert!(len != TOUCHED_SPAN, "list length collides with the span sentinel");
        Touched { a: start, b: len }
    }

    /// Unpacks the encoding.
    #[inline]
    pub fn kind(self) -> TouchedKind {
        if self.b == TOUCHED_SPAN {
            TouchedKind::Span(self.a)
        } else {
            TouchedKind::List(self.a, self.b)
        }
    }
}

/// The unpacked view of a [`Touched`] encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TouchedKind {
    /// Consecutively numbered nodes starting here.
    Span(NodeId),
    /// A `(start, len)` range into [`TraceSegment::touched`].
    List(u32, u32),
}

/// A `(start, len)` range into [`TraceSegment::edges`]: the outcome→target
/// edges of one dispatch op, hot edge first. 8 bytes in the op instead of
/// a 16-byte `Box<[..]>` (plus its heap block and indirection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRange {
    /// First edge index.
    pub start: u32,
    /// Edge count.
    pub len: u32,
}

/// One compact op of a compiled [`TraceSegment`].
///
/// Action ops carry an `anchored` flag instead of the segment spending a
/// separate op on configuration crossings: a configuration head *is* the
/// first action of its chain, so execution performs the crossing
/// bookkeeping and the action in one dispatch.
///
/// Ops are kept at 24 bytes or less (checked at compile time below) so a
/// segment scan touches as few cache lines as possible: wide payloads —
/// the 20-byte [`RetireCounts`] and the variable-length edge lists — live
/// in [`TraceSegment`] side tables and are referenced by 4- and 8-byte
/// indices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceOp {
    /// A maximal run of consecutive `Advance` actions, pre-aggregated:
    /// `cycles` summed, `retired` merged, `count` logical actions,
    /// `touched` the covered node ids for `accessed` marking.
    Bulk {
        /// Total simulated cycles of the run.
        cycles: u32,
        /// Merged retirement counts of the run: an index into
        /// [`TraceSegment::retires`].
        retired: u32,
        /// Logical `Advance` actions aggregated (for action counters).
        count: u32,
        /// The covered node ids.
        touched: Touched,
        /// The run's first node is a configuration head: perform the
        /// crossing bookkeeping before the run's effects.
        anchored: bool,
    },
    /// `IssueStore` with the sQ index pre-resolved into the op.
    IssueStore {
        /// The covered node.
        node: NodeId,
        /// Head-relative sQ position.
        sq_index: u32,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// `CancelLoad` with the lQ index pre-resolved into the op.
    CancelLoad {
        /// The covered node.
        node: NodeId,
        /// Head-relative lQ position.
        lq_index: u32,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// `Rollback` with the cQ index pre-resolved into the op.
    Rollback {
        /// The covered node.
        node: NodeId,
        /// Head-relative cQ position.
        ctrl_index: u32,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// `FetchRecord` dispatch point. `edges` are the outcome→target edges
    /// known at compile time, hot edge first; the hot outcome continues
    /// inline to the next op.
    Fetch {
        /// The dispatching node (for live-edge fallback on uncarried
        /// outcomes).
        node: NodeId,
        /// Outcome edges at compile time, the first inlined (a range into
        /// [`TraceSegment::edges`]).
        edges: EdgeRange,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// `IssueLoad` dispatch point (see [`TraceOp::Fetch`]).
    IssueLoad {
        /// The dispatching node.
        node: NodeId,
        /// Head-relative lQ position, pre-resolved.
        lq_index: u32,
        /// Outcome edges at compile time, the first inlined.
        edges: EdgeRange,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// `PollLoad` dispatch point (see [`TraceOp::Fetch`]).
    PollLoad {
        /// The dispatching node.
        node: NodeId,
        /// Head-relative lQ position, pre-resolved.
        lq_index: u32,
        /// Outcome edges at compile time, the first inlined.
        edges: EdgeRange,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// A `Finish` action: the program completes here.
    Finish {
        /// The covered node.
        node: NodeId,
        /// The node is a configuration head (crossing before action).
        anchored: bool,
    },
    /// Segment end without executing `node`: continue node-at-a-time
    /// replay at `node` (its links are read live there).
    Cut {
        /// The first node *not* covered by the segment.
        node: NodeId,
    },
    /// Loop back to op `op` (whose first covered node is `node`): the
    /// chain revisits a node already compiled into this segment.
    Jump {
        /// Target op index within the same segment.
        op: u32,
        /// The revisited node (for budget-exit bookkeeping).
        node: NodeId,
    },
}

// Segment scans are the warm-replay hot loop: keep every op within 24
// bytes (wide payloads are side-tabled). A change that grows the enum
// past this fails the build here, not in a benchmark regression.
const _: () = assert!(std::mem::size_of::<TraceOp>() <= 24);

/// A compiled linear replay segment for one configuration head. See the
/// module docs above for the format and its equivalence guarantees.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSegment {
    /// The compact ops, executed by a linear scan (plus `Jump`s).
    pub ops: Vec<TraceOp>,
    /// Node ids covered by [`TraceOp::Bulk`] ops, referenced by range.
    pub touched: Vec<NodeId>,
    /// Merged retirement counts of [`TraceOp::Bulk`] ops, referenced by
    /// index (the 20-byte payload would otherwise dominate the op size).
    pub retires: Vec<RetireCounts>,
    /// Outcome edges of dispatch ops, referenced by [`EdgeRange`].
    pub edges: Vec<(OutcomeKey, NodeId)>,
    /// Fingerprint of the covered `(node id, action)` stream, computed at
    /// compile time. Recomputable from the ops and any arena, so snapshot
    /// thaw and merge import revalidate a segment by re-hashing it over
    /// the candidate arena — a mismatch (relocated ids, a different
    /// lineage) drops the segment instead of ever replaying it wrong.
    pub fp: u64,
    /// Highest node id the segment references anywhere (covered nodes,
    /// dispatch edge targets, cut/jump nodes): the segment is meaningful
    /// only for arenas longer than this, and a merge may import it only
    /// when every referenced id lies inside the shared base prefix.
    pub max_node: NodeId,
}

impl TraceSegment {
    /// The nodes covered by a [`TraceOp::Bulk`]'s `touched` range.
    #[inline]
    pub fn touched_slice(&self, range: (u32, u32)) -> &[NodeId] {
        &self.touched[range.0 as usize..(range.0 + range.1) as usize]
    }

    /// The outcome edges of a dispatch op, hot edge first.
    #[inline]
    pub fn edges_slice(&self, range: EdgeRange) -> &[(OutcomeKey, NodeId)] {
        &self.edges[range.start as usize..(range.start + range.len) as usize]
    }

    /// The first chain node the op at `ip` covers (or, for `Cut`/`Jump`,
    /// resumes at) — the correct replay cursor for a pause before `ip`.
    pub fn entry_node(&self, ip: usize) -> NodeId {
        match &self.ops[ip] {
            TraceOp::Bulk { touched, .. } => match touched.kind() {
                TouchedKind::Span(first) => first,
                TouchedKind::List(start, _) => self.touched[start as usize],
            },
            TraceOp::IssueStore { node, .. }
            | TraceOp::CancelLoad { node, .. }
            | TraceOp::Rollback { node, .. }
            | TraceOp::Fetch { node, .. }
            | TraceOp::IssueLoad { node, .. }
            | TraceOp::PollLoad { node, .. }
            | TraceOp::Finish { node, .. }
            | TraceOp::Cut { node }
            | TraceOp::Jump { node, .. } => *node,
        }
    }

    /// Number of logical actions the segment covers (bulk counts
    /// included), for statistics and tests.
    pub fn logical_actions(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Bulk { count, .. } => *count as u64,
                TraceOp::Cut { .. } | TraceOp::Jump { .. } => 0,
                _ => 1,
            })
            .sum()
    }
}

/// A pending [`TraceOp::Bulk`] accumulation during compilation.
struct BulkAcc {
    cycles: u32,
    retired: RetireCounts,
    count: u32,
    start: u32,
    /// First and last node of the run, and whether every node so far was
    /// the numeric successor of the previous one (straight-line
    /// recordings are): a contiguous run compiles to [`TouchedKind::Span`]
    /// and stores no per-node list at all.
    first: NodeId,
    prev: NodeId,
    contiguous: bool,
    /// The run's first node is a configuration head.
    anchored: bool,
}

/// Seed of a segment fingerprint (FNV-1a offset basis).
const FP_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one 64-bit lane into a segment fingerprint (FNV-1a).
#[inline]
fn fp_eat(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Folds a covered node's identity and action into a segment fingerprint.
/// Hashing the full action payload (not just the discriminant) means a
/// revalidation pass detects any arena whose covered nodes would replay
/// differently from the arena the segment was compiled against.
fn fp_eat_node(h: &mut u64, n: NodeId, kind: &ActionKind) {
    fp_eat(h, u64::from(n));
    match *kind {
        ActionKind::Advance { cycles, retired } => {
            fp_eat(h, 1);
            fp_eat(h, u64::from(cycles));
            fp_eat(h, u64::from(retired.insts));
            fp_eat(h, u64::from(retired.loads));
            fp_eat(h, u64::from(retired.stores));
            fp_eat(h, u64::from(retired.ctrls));
            fp_eat(h, u64::from(retired.branches));
        }
        ActionKind::FetchRecord => fp_eat(h, 2),
        ActionKind::IssueLoad { lq_index } => {
            fp_eat(h, 3);
            fp_eat(h, u64::from(lq_index));
        }
        ActionKind::PollLoad { lq_index } => {
            fp_eat(h, 4);
            fp_eat(h, u64::from(lq_index));
        }
        ActionKind::IssueStore { sq_index } => {
            fp_eat(h, 5);
            fp_eat(h, u64::from(sq_index));
        }
        ActionKind::CancelLoad { lq_index } => {
            fp_eat(h, 6);
            fp_eat(h, u64::from(lq_index));
        }
        ActionKind::Rollback { ctrl_index } => {
            fp_eat(h, 7);
            fp_eat(h, u64::from(ctrl_index));
        }
        ActionKind::Finish => fp_eat(h, 8),
    }
}

fn flush_bulk(
    ops: &mut Vec<TraceOp>,
    touched: &mut Vec<NodeId>,
    retires: &mut Vec<RetireCounts>,
    bulk: &mut Option<BulkAcc>,
) {
    if let Some(b) = bulk.take() {
        let t = if b.contiguous {
            touched.truncate(b.start as usize);
            Touched::span(b.first)
        } else {
            Touched::list(b.start, touched.len() as u32 - b.start)
        };
        let retired = retires.len() as u32;
        retires.push(b.retired);
        ops.push(TraceOp::Bulk {
            cycles: b.cycles,
            retired,
            count: b.count,
            touched: t,
            anchored: b.anchored,
        });
    }
}

impl PActionCache {
    /// The trace-compilation hotness threshold (see
    /// [`set_hotness_threshold`](PActionCache::set_hotness_threshold)).
    pub fn hotness_threshold(&self) -> u32 {
        self.hotness_threshold
    }

    /// Sets the hotness threshold: a configuration's chain is compiled
    /// into a [`TraceSegment`] once replay has entered it more than
    /// `threshold` times. `0` compiles every chain on first entry;
    /// `u32::MAX` disables trace compilation entirely. Changing the
    /// threshold never invalidates already-compiled segments.
    pub fn set_hotness_threshold(&mut self, threshold: u32) {
        self.hotness_threshold = threshold;
    }

    /// Number of currently compiled trace segments.
    pub fn trace_count(&self) -> usize {
        self.traces.iter().filter(|t| t.is_some()).count()
    }

    /// Whether `id` is a configuration's first action (a trace-entry
    /// candidate and a replay crossing point).
    #[inline]
    pub fn is_config_head(&self, id: NodeId) -> bool {
        self.nodes[id as usize].config.is_some()
    }

    /// Marks `id` accessed (GC liveness), exactly as following a link to
    /// it during node-at-a-time replay would.
    #[inline]
    pub fn mark_accessed(&mut self, id: NodeId) {
        self.accessed[id as usize] = true;
    }

    /// Marks `len` consecutively-numbered nodes starting at `start`
    /// accessed — a slice fill over the dense accessed array, the fast
    /// path for [`TouchedKind::Span`] bulk runs.
    #[inline]
    pub fn mark_accessed_span(&mut self, start: NodeId, len: u32) {
        let s = start as usize;
        self.accessed[s..s + len as usize].fill(true);
    }

    /// Replay is entering the chain of configuration head `head`: returns
    /// the compiled segment if one exists, bumping the (adaptive) hotness
    /// counter and compiling when it crosses the threshold. `None` means
    /// replay should proceed node-at-a-time (chain not hot yet,
    /// compilation disabled, or the chain is too degenerate to compile).
    pub fn trace_enter(&mut self, head: NodeId) -> Option<Arc<TraceSegment>> {
        if self.hotness_threshold == u32::MAX {
            // Disabled: node-at-a-time even when a thawed snapshot carried
            // compiled segments — the node-replay baseline stays pure.
            return None;
        }
        if let Some(seg) = &self.traces[head as usize] {
            self.stats.replay_segments_entered += 1;
            return Some(Arc::clone(seg));
        }
        let weight = self.entry_weight(head as usize);
        let visits = &mut self.hotness[head as usize];
        *visits = visits.saturating_add(weight);
        if *visits <= self.hotness_threshold {
            return None;
        }
        let seg = Arc::new(self.compile_trace(head)?);
        self.stats.trace_segments_compiled += 1;
        self.stats.replay_segments_entered += 1;
        self.traces[head as usize] = Some(Arc::clone(&seg));
        Some(seg)
    }

    /// A segment exited through a carried cold edge or a cut at `n`:
    /// returns the segment to continue in directly (patching the chain
    /// link), or `None` to bail out to node-at-a-time replay.
    ///
    /// Targets without a compiled segment are compiled *immediately* —
    /// the next-executing-tail heuristic from dynamic binary translation:
    /// control only reaches a chain target out of an already-hot segment,
    /// so the target inherits its predecessor's hotness instead of
    /// re-proving it one bailout at a time. (The per-head adaptive
    /// threshold still gates the *initial* promotion out of
    /// node-at-a-time replay; without it no segment would exist to chain
    /// from.) Compile cost stays bounded by the number of distinct exit
    /// targets, while every avoided bailout saves a full bounce through
    /// the node arena. Mid-chain targets compile unanchored superblocks
    /// starting at their own node, so hot exit ladders run
    /// segment-to-segment end to end.
    pub fn chain_enter(&mut self, n: NodeId) -> Option<Arc<TraceSegment>> {
        if !self.chaining || self.hotness_threshold == u32::MAX {
            return None;
        }
        let i = n as usize;
        let patched = self.chain_stamp[i] == self.chain_epoch;
        if let Some(seg) = &self.traces[i] {
            let seg = Arc::clone(seg);
            if patched {
                self.stats.chain_follows += 1;
            } else {
                self.chain_stamp[i] = self.chain_epoch;
            }
            self.stats.chained_exits += 1;
            self.stats.replay_segments_entered += 1;
            return Some(seg);
        }
        let seg = Arc::new(self.compile_trace(n)?);
        self.stats.trace_segments_compiled += 1;
        self.stats.chained_exits += 1;
        self.stats.replay_segments_entered += 1;
        self.chain_stamp[i] = self.chain_epoch;
        self.traces[i] = Some(Arc::clone(&seg));
        Some(seg)
    }

    /// Whether segment exits chain directly into other compiled segments
    /// (see [`set_chaining`](PActionCache::set_chaining)).
    pub fn chaining(&self) -> bool {
        self.chaining
    }

    /// Enables or disables superblock chaining (on by default). Purely a
    /// performance knob: simulation results and every architectural
    /// statistic are bit-identical either way; only the trace counters in
    /// [`crate::MemoStats`] differ.
    pub fn set_chaining(&mut self, enabled: bool) {
        self.chaining = enabled;
    }

    /// Adaptive hotness weight for a hotness-counted entry at node index
    /// `i`: ticks the global entry clock and weighs the entry by how
    /// recently the node was last entered (see the module docs).
    fn entry_weight(&mut self, i: usize) -> u32 {
        let clock = self.entry_clock;
        self.entry_clock = clock.wrapping_add(1);
        // `last_seen` stores clock+1 so 0 always means "never entered".
        let prev = std::mem::replace(&mut self.last_seen[i], clock.wrapping_add(1));
        if prev != 0 && clock.wrapping_sub(prev - 1) <= RECENT_WINDOW {
            HOT_REENTRY_WEIGHT
        } else {
            1
        }
    }

    /// Counts a segment execution that bailed out to node-at-a-time
    /// replay (cold or unseen outcome, or a chain cut).
    #[inline]
    pub fn note_trace_bailout(&mut self) {
        self.stats.replay_bailouts += 1;
    }

    /// Adds to the compact-trace-op execution counter.
    #[inline]
    pub fn note_trace_ops(&mut self, ops: u64) {
        self.stats.replay_trace_ops += ops;
    }

    /// Drops every compiled segment, hotness counter and chain link,
    /// re-sizing the dense side tables to the current arena. Called by
    /// `flush` and `collect` (node ids relocate) — always *after* the
    /// node arena reached its new shape.
    pub(crate) fn invalidate_traces(&mut self) {
        self.traces.clear();
        self.traces.resize(self.nodes.len(), None);
        self.hotness.clear();
        self.hotness.resize(self.nodes.len(), 0);
        self.last_seen.clear();
        self.last_seen.resize(self.nodes.len(), 0);
        self.chain_stamp.clear();
        self.chain_stamp.resize(self.nodes.len(), 0);
        self.bump_chain_epoch();
    }

    /// Grows the trace side tables after a merge appended nodes,
    /// *preserving* the master's compiled segments and hotness counters —
    /// merged growth is append-only, which keeps existing segments valid
    /// by construction (see the module docs) — while severing every chain
    /// link (one epoch bump) so links re-patch against the merged graph.
    pub(crate) fn grow_trace_tables_after_merge(&mut self) {
        self.traces.resize(self.nodes.len(), None);
        self.hotness.resize(self.nodes.len(), 0);
        self.last_seen.resize(self.nodes.len(), 0);
        self.chain_stamp.resize(self.nodes.len(), 0);
        self.bump_chain_epoch();
    }

    /// Severs every chain link by moving to a fresh epoch. On the (rare)
    /// wrap, stale stamps could collide with a reused epoch value, so the
    /// stamp table is cleared once.
    fn bump_chain_epoch(&mut self) {
        self.chain_epoch = self.chain_epoch.wrapping_add(1);
        if self.chain_epoch == 0 {
            self.chain_stamp.iter_mut().for_each(|s| *s = 0);
            self.chain_epoch = 1;
        }
    }

    /// Revalidates `seg` against this cache's *current* arena: every
    /// referenced node must exist, the covered `(node, action)` stream
    /// must re-hash to the segment's stored fingerprint, and each
    /// dispatch op's compiled edges must be a prefix of the live node's
    /// edges (recording and merges only ever append edges, and the
    /// hot-first compile order is the recording order). Used by snapshot
    /// thaw and merge import; `false` means the segment may not replay
    /// bit-identically to node-at-a-time over this arena and must be
    /// dropped.
    pub(crate) fn segment_valid(&self, seg: &TraceSegment) -> bool {
        if (seg.max_node as usize) >= self.nodes.len() {
            return false;
        }
        let mut h: u64 = FP_SEED;
        for op in &seg.ops {
            match *op {
                TraceOp::Bulk { count, touched, .. } => match touched.kind() {
                    TouchedKind::Span(first) => {
                        for n in first..first + count {
                            fp_eat_node(&mut h, n, &self.nodes[n as usize].kind);
                        }
                    }
                    TouchedKind::List(start, len) => {
                        for &n in seg.touched_slice((start, len)) {
                            fp_eat_node(&mut h, n, &self.nodes[n as usize].kind);
                        }
                    }
                },
                TraceOp::IssueStore { node, .. }
                | TraceOp::CancelLoad { node, .. }
                | TraceOp::Rollback { node, .. }
                | TraceOp::Finish { node, .. } => {
                    fp_eat_node(&mut h, node, &self.nodes[node as usize].kind);
                }
                TraceOp::Fetch { node, edges, .. }
                | TraceOp::IssueLoad { node, edges, .. }
                | TraceOp::PollLoad { node, edges, .. } => {
                    fp_eat_node(&mut h, node, &self.nodes[node as usize].kind);
                    let live = self.outcome_edges(node);
                    let compiled = seg.edges_slice(edges);
                    if live.len() < compiled.len() || &live[..compiled.len()] != compiled {
                        return false;
                    }
                }
                TraceOp::Cut { .. } | TraceOp::Jump { .. } => {}
            }
        }
        h == seg.fp
    }

    /// The outcome edges recorded at an outcome-bearing node, in recording
    /// order (the first is the trace compiler's hot edge). Empty for
    /// outcome-less nodes.
    pub fn outcome_edges(&self, id: NodeId) -> &[(OutcomeKey, NodeId)] {
        match &self.nodes[id as usize].next {
            Successors::Multi(edges) => edges,
            Successors::Single(_) => &[],
        }
    }

    /// Compiles the chain starting at configuration head `head` into a
    /// linear segment. Returns `None` for degenerate chains that would
    /// compile to zero action ops (nothing to gain, and an action-less
    /// segment could not make progress).
    pub(crate) fn compile_trace(&mut self, head: NodeId) -> Option<TraceSegment> {
        let mut ops: Vec<TraceOp> = Vec::new();
        let mut touched: Vec<NodeId> = Vec::new();
        let mut retires: Vec<RetireCounts> = Vec::new();
        let mut edge_table: Vec<(OutcomeKey, NodeId)> = Vec::new();
        // First op index of every node that starts an op (jump targets),
        // kept as an epoch-stamped dense scratch reused across compiles:
        // a stamp equal to the current epoch marks a valid entry, so no
        // per-compile clearing (and no per-node hash probes) is needed.
        let mut stamp = std::mem::take(&mut self.compile_stamp);
        let mut op_at = std::mem::take(&mut self.compile_op);
        self.compile_epoch = self.compile_epoch.wrapping_add(1);
        if self.compile_epoch == 0 {
            stamp.iter_mut().for_each(|s| *s = 0);
            self.compile_epoch = 1;
        }
        let epoch = self.compile_epoch;
        if stamp.len() < self.nodes.len() {
            stamp.resize(self.nodes.len(), 0);
            op_at.resize(self.nodes.len(), 0);
        }
        let mut bulk: Option<BulkAcc> = None;
        let mut actions = 0u64;
        // The revalidation fingerprint (covered nodes in visit order —
        // the same order `segment_valid` recovers from the ops) and the
        // highest node id referenced anywhere.
        let mut fp: u64 = FP_SEED;
        let mut max_node: NodeId = head;
        let mut n = head;
        loop {
            // Revisit: the chain loops; jump back into the segment.
            if stamp[n as usize] == epoch {
                flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                ops.push(TraceOp::Jump { op: op_at[n as usize], node: n });
                break;
            }
            if ops.len() >= MAX_TRACE_OPS {
                flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                max_node = max_node.max(n);
                ops.push(TraceOp::Cut { node: n });
                break;
            }
            let node = &self.nodes[n as usize];
            // Configuration heads get the crossing bookkeeping fused into
            // their own op (including the segment's own head). A node that
            // instead *cuts* the segment never emits its op, so the live
            // re-execution performs the crossing itself, exactly once.
            let anchored = node.config.is_some();
            if anchored {
                flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
            }
            macro_rules! cut_at {
                () => {{
                    flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                    max_node = max_node.max(n);
                    ops.push(TraceOp::Cut { node: n });
                    break;
                }};
            }
            // Marks `n`'s op as starting at the current end of `ops` (the
            // pending bulk, if any, was flushed by every caller first).
            macro_rules! mark_op_start {
                () => {{
                    stamp[n as usize] = epoch;
                    op_at[n as usize] = ops.len() as u32;
                }};
            }
            let single_next = |next: &Successors| match next {
                Successors::Single(s) => *s,
                Successors::Multi(_) => unreachable!("single successor on branching node"),
            };
            match node.kind {
                ActionKind::Advance { cycles, retired } => {
                    let Some(next) = single_next(&node.next) else { cut_at!() };
                    fp_eat_node(&mut fp, n, &node.kind);
                    max_node = max_node.max(n);
                    match &mut bulk {
                        // Extend the pending run if the cycle sum fits.
                        Some(b) if b.cycles.checked_add(cycles).is_some() => {
                            b.cycles += cycles;
                            b.retired.add(retired);
                            b.count += 1;
                            b.contiguous &= n == b.prev.wrapping_add(1);
                            b.prev = n;
                        }
                        _ => {
                            flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                            // The bulk op will land at the current end of
                            // `ops` (every other push flushes first).
                            mark_op_start!();
                            bulk = Some(BulkAcc {
                                cycles,
                                retired,
                                count: 1,
                                start: touched.len() as u32,
                                first: n,
                                prev: n,
                                contiguous: true,
                                anchored,
                            });
                        }
                    }
                    touched.push(n);
                    actions += 1;
                    n = next;
                }
                ActionKind::IssueStore { sq_index } => {
                    let Some(next) = single_next(&node.next) else { cut_at!() };
                    fp_eat_node(&mut fp, n, &node.kind);
                    max_node = max_node.max(n);
                    flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                    mark_op_start!();
                    ops.push(TraceOp::IssueStore { node: n, sq_index, anchored });
                    actions += 1;
                    n = next;
                }
                ActionKind::CancelLoad { lq_index } => {
                    let Some(next) = single_next(&node.next) else { cut_at!() };
                    fp_eat_node(&mut fp, n, &node.kind);
                    max_node = max_node.max(n);
                    flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                    mark_op_start!();
                    ops.push(TraceOp::CancelLoad { node: n, lq_index, anchored });
                    actions += 1;
                    n = next;
                }
                ActionKind::Rollback { ctrl_index } => {
                    let Some(next) = single_next(&node.next) else { cut_at!() };
                    fp_eat_node(&mut fp, n, &node.kind);
                    max_node = max_node.max(n);
                    flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                    mark_op_start!();
                    ops.push(TraceOp::Rollback { node: n, ctrl_index, anchored });
                    actions += 1;
                    n = next;
                }
                ActionKind::FetchRecord
                | ActionKind::IssueLoad { .. }
                | ActionKind::PollLoad { .. } => {
                    let edges = match &node.next {
                        Successors::Multi(edges) => edges,
                        Successors::Single(_) => unreachable!("dispatch node without edges"),
                    };
                    if edges.is_empty() {
                        cut_at!()
                    }
                    fp_eat_node(&mut fp, n, &node.kind);
                    max_node = max_node.max(n);
                    for &(_, target) in edges.iter() {
                        max_node = max_node.max(target);
                    }
                    flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                    mark_op_start!();
                    let range = EdgeRange {
                        start: edge_table.len() as u32,
                        len: edges.len() as u32,
                    };
                    edge_table.extend_from_slice(edges);
                    let hot = edges[0].1;
                    ops.push(match node.kind {
                        ActionKind::FetchRecord => {
                            TraceOp::Fetch { node: n, edges: range, anchored }
                        }
                        ActionKind::IssueLoad { lq_index } => {
                            TraceOp::IssueLoad { node: n, lq_index, edges: range, anchored }
                        }
                        ActionKind::PollLoad { lq_index } => {
                            TraceOp::PollLoad { node: n, lq_index, edges: range, anchored }
                        }
                        _ => unreachable!(),
                    });
                    actions += 1;
                    n = hot;
                }
                ActionKind::Finish => {
                    fp_eat_node(&mut fp, n, &node.kind);
                    max_node = max_node.max(n);
                    flush_bulk(&mut ops, &mut touched, &mut retires, &mut bulk);
                    ops.push(TraceOp::Finish { node: n, anchored });
                    actions += 1;
                    break;
                }
            }
        }
        self.compile_stamp = stamp;
        self.compile_op = op_at;
        (actions > 0)
            .then_some(TraceSegment { ops, touched, retires, edges: edge_table, fp, max_node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ConfigLookup;
    use crate::policy::Policy;

    fn advance(n: u32) -> ActionKind {
        ActionKind::Advance { cycles: n, retired: RetireCounts::default() }
    }

    fn retire(insts: u32) -> RetireCounts {
        RetireCounts { insts, ..RetireCounts::default() }
    }

    /// Consecutive `Advance` actions aggregate into one `Bulk` op with
    /// summed cycles and merged retires — and the logical count survives.
    #[test]
    fn consecutive_advances_aggregate() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(ActionKind::Advance { cycles: 3, retired: retire(2) });
        pc.record_action(ActionKind::Advance { cycles: 4, retired: retire(1) });
        pc.record_action(ActionKind::IssueStore { sq_index: 5 });
        pc.record_action(ActionKind::Finish);
        let seg = pc.compile_trace(head).expect("compilable");
        assert_eq!(seg.ops.len(), 3, "{:?}", seg.ops);
        match &seg.ops[0] {
            TraceOp::Bulk { cycles, retired, count, touched, anchored } => {
                assert_eq!(*cycles, 7);
                assert_eq!(seg.retires[*retired as usize].insts, 3);
                assert_eq!(*count, 2);
                // Straight-line recording: consecutive ids, marked by span.
                assert_eq!(touched.kind(), TouchedKind::Span(head));
                assert!(seg.touched.is_empty(), "span runs store no list");
                // The head's crossing is fused into its own bulk op.
                assert!(*anchored);
            }
            other => panic!("expected Bulk, got {other:?}"),
        }
        assert!(matches!(seg.ops[1], TraceOp::IssueStore { sq_index: 5, anchored: false, .. }));
        assert!(matches!(seg.ops[2], TraceOp::Finish { .. }));
        assert_eq!(seg.logical_actions(), 4);
    }

    /// A dispatch compiles its edges hot-first and the compiler follows
    /// the hot edge inline.
    #[test]
    fn dispatch_carries_edges_and_follows_hot_path() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 2 });
        pc.set_outcome(load, OutcomeKey::Interval(6));
        pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        // A second, colder outcome.
        pc.resume_recording_at(load, Some(OutcomeKey::Interval(9)));
        pc.record_action(advance(9));
        pc.record_action(ActionKind::Finish);
        let seg = pc.compile_trace(head).expect("compilable");
        match &seg.ops[1] {
            TraceOp::IssueLoad { lq_index, edges, .. } => {
                assert_eq!(*lq_index, 2);
                let edges = seg.edges_slice(*edges);
                assert_eq!(edges.len(), 2);
                assert_eq!(edges[0].0, OutcomeKey::Interval(6), "hot edge first");
            }
            other => panic!("expected IssueLoad dispatch, got {other:?}"),
        }
        // Hot path continues to advance(2) then Finish.
        assert!(matches!(seg.ops[2], TraceOp::Bulk { cycles: 2, .. }));
        assert!(matches!(seg.ops[3], TraceOp::Finish { .. }));
    }

    /// A looping chain compiles to a `Jump` back into the segment, not an
    /// unrolled or truncated walk.
    #[test]
    fn loops_compile_to_jump() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        let fetch = pc.record_action(ActionKind::FetchRecord);
        pc.set_outcome(fetch, OutcomeKey::Branch { taken: true, mispredicted: false });
        // The loop body hits config A again: chain links back to head.
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Hit(head));
        let seg = pc.compile_trace(head).expect("compilable");
        assert!(
            matches!(seg.ops[0], TraceOp::Bulk { touched, anchored: true, .. } if touched.kind() == TouchedKind::Span(head))
        );
        match seg.ops.last().expect("non-empty") {
            TraceOp::Jump { op, node } => {
                assert_eq!(*op, 0, "jump lands on the head's anchored op");
                assert_eq!(*node, head);
            }
            other => panic!("expected Jump, got {other:?}"),
        }
    }

    /// A missing successor cuts the segment *before* the dangling node,
    /// and a crossing op pushed for that node is rolled back.
    #[test]
    fn missing_links_cut_before_the_node() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        assert_eq!(pc.register_config(b"B"), ConfigLookup::Miss);
        let b_head = pc.record_action(advance(2));
        // B's chain ends abruptly: advance(2) has no successor.
        let seg = pc.compile_trace(head).expect("compilable");
        // head's advance compiles; B's head is cut without emitting any op
        // (node-at-a-time replay will perform B's crossing itself).
        assert_eq!(
            seg.ops,
            vec![
                TraceOp::Bulk {
                    cycles: 1,
                    retired: 0,
                    count: 1,
                    touched: Touched::span(head),
                    anchored: true,
                },
                TraceOp::Cut { node: b_head },
            ]
        );
        assert_eq!(seg.retires, vec![RetireCounts::default()]);
        // B's own chain is a bare advance with no successor: nothing to
        // compile.
        assert!(pc.compile_trace(b_head).is_none());
    }

    /// A bulk run whose node ids are *not* consecutive (here: a link
    /// grafted by a merge points past the master's old arena end)
    /// compiles to an explicit id list instead of a span.
    #[test]
    fn noncontiguous_bulk_runs_compile_to_lists() {
        let mut master = PActionCache::new(Policy::Unbounded);
        assert_eq!(master.register_config(b"B"), ConfigLookup::Miss);
        master.record_action(advance(2));
        master.record_action(ActionKind::Finish);
        // A's chain dangles: recording was interrupted after one advance.
        assert_eq!(master.register_config(b"A"), ConfigLookup::Miss);
        let a0 = master.record_action(advance(1));
        let snap = master.freeze();

        // Worker 1 grows the master with an unrelated configuration, so
        // worker 2's graft target lands past `a0 + 1`.
        let mut w1 = PActionCache::from_snapshot(&snap);
        assert_eq!(w1.register_config(b"C"), ConfigLookup::Miss);
        w1.record_action(advance(3));
        w1.record_action(ActionKind::Finish);

        // Worker 2 replays A, runs off the chain end, and records on.
        let mut w2 = PActionCache::from_snapshot(&snap);
        let head = match w2.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!("A is frozen"),
        };
        assert_eq!(w2.advance(head), None);
        w2.resume_recording_at(head, None);
        w2.record_action(advance(4));
        w2.record_action(ActionKind::Finish);

        master.merge_from(&w1.freeze());
        master.merge_from(&w2.freeze());

        let seg = master.compile_trace(a0).expect("compilable");
        match &seg.ops[0] {
            TraceOp::Bulk { count: 2, touched, .. } => {
                let TouchedKind::List(start, len) = touched.kind() else {
                    panic!("expected a listed Bulk, got {touched:?}")
                };
                assert_eq!(len, 2);
                let nodes = seg.touched_slice((start, len));
                assert_eq!(nodes[0], a0);
                assert!(nodes[1] != a0 + 1, "graft target is out of line");
            }
            other => panic!("expected a listed Bulk, got {other:?}"),
        }
    }

    /// An outcome-bearing node with no recorded edges ends the segment.
    #[test]
    fn edgeless_dispatch_cuts() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
        let seg = pc.compile_trace(head).expect("compilable");
        assert_eq!(*seg.ops.last().unwrap(), TraceOp::Cut { node: load });
    }

    /// trace_enter promotes adaptively — rapid re-entries weigh
    /// [`HOT_REENTRY_WEIGHT`], sparse ones weigh 1 — caches the compiled
    /// segment, and the sentinel thresholds behave as documented.
    #[test]
    fn hotness_thresholds() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        pc.record_action(ActionKind::Finish);

        pc.set_hotness_threshold(2);
        assert!(pc.trace_enter(head).is_none(), "visit 1 weighs 1: below threshold");
        // A rapid re-entry weighs HOT_REENTRY_WEIGHT and crosses the
        // threshold immediately: 1 + 4 > 2.
        let seg = pc.trace_enter(head).expect("rapid visit 2 compiles");
        assert_eq!(pc.trace_count(), 1);
        assert_eq!(pc.stats().trace_segments_compiled, 1);
        assert_eq!(pc.stats().replay_segments_entered, 1);
        // Subsequent entries reuse the compiled segment.
        let again = pc.trace_enter(head).expect("cached");
        assert!(Arc::ptr_eq(&seg, &again));
        assert_eq!(pc.stats().trace_segments_compiled, 1);
        assert_eq!(pc.stats().replay_segments_entered, 2);

        // Sparse entries (past the recency window) weigh 1 each: the same
        // threshold takes three visits instead of two.
        let mut sparse = PActionCache::new(Policy::Unbounded);
        assert_eq!(sparse.register_config(b"B"), ConfigLookup::Miss);
        let b = sparse.record_action(advance(1));
        sparse.record_action(ActionKind::Finish);
        let mut fillers = Vec::new();
        for i in 0..RECENT_WINDOW + 1 {
            let key = format!("F{i}");
            assert_eq!(sparse.register_config(key.as_bytes()), ConfigLookup::Miss);
            fillers.push(sparse.record_action(advance(1)));
            sparse.record_action(ActionKind::Finish);
        }
        sparse.set_hotness_threshold(2);
        assert!(sparse.trace_enter(b).is_none(), "sparse visit 1");
        for &f in &fillers {
            let _ = sparse.trace_enter(f); // tick the global entry clock
        }
        assert!(sparse.trace_enter(b).is_none(), "sparse visit 2 still weighs 1");
        for &f in &fillers {
            let _ = sparse.trace_enter(f);
        }
        let _ = sparse.trace_enter(b).expect("sparse visit 3 crosses threshold 2");

        // Threshold 0: a fresh cache compiles on first entry.
        let mut eager = PActionCache::new(Policy::Unbounded);
        assert_eq!(eager.register_config(b"A"), ConfigLookup::Miss);
        let h = eager.record_action(advance(1));
        eager.record_action(ActionKind::Finish);
        eager.set_hotness_threshold(0);
        assert!(eager.trace_enter(h).is_some());

        // u32::MAX: never compiles.
        let mut never = PActionCache::new(Policy::Unbounded);
        assert_eq!(never.register_config(b"A"), ConfigLookup::Miss);
        let h = never.record_action(advance(1));
        never.record_action(ActionKind::Finish);
        never.set_hotness_threshold(u32::MAX);
        for _ in 0..64 {
            assert!(never.trace_enter(h).is_none());
        }
        assert_eq!(never.stats().trace_segments_compiled, 0);
    }

    /// Flush and collection invalidate compiled segments (node ids
    /// relocate); merges and freeze/thaw *preserve* them (append-only
    /// growth keeps them valid, and snapshots carry them).
    #[test]
    fn invalidation_on_flush_collect_merge() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        pc.record_action(ActionKind::Finish);
        pc.set_hotness_threshold(0);
        assert!(pc.trace_enter(head).is_some());
        assert_eq!(pc.trace_count(), 1);

        pc.collect(false);
        assert_eq!(pc.trace_count(), 0, "collection relocates node ids");

        let head = match pc.register_config(b"A") {
            ConfigLookup::Hit(id) => id,
            ConfigLookup::Miss => panic!("A survives the collection"),
        };
        assert!(pc.trace_enter(head).is_some());
        pc.flush();
        assert_eq!(pc.trace_count(), 0, "flush drops everything");

        // Rebuild, compile, then freeze/thaw and merge a delta: segments
        // now ride along instead of being dropped.
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        pc.record_action(ActionKind::Finish);
        assert!(pc.trace_enter(head).is_some());
        let snap = pc.freeze();
        let mut worker = PActionCache::from_snapshot(&snap);
        assert_eq!(worker.trace_count(), 1, "thaw revives frozen segments");
        assert_eq!(worker.stats().segments_thawed, 1);
        let compiled_before = worker.stats().trace_segments_compiled;
        assert!(worker.trace_enter(head).is_some(), "revived segment is entered directly");
        assert_eq!(
            worker.stats().trace_segments_compiled,
            compiled_before,
            "no recompile after thaw"
        );
        assert_eq!(worker.register_config(b"B"), ConfigLookup::Miss);
        worker.record_action(advance(2));
        worker.record_action(ActionKind::Finish);
        let delta = worker.freeze();
        pc.merge_from(&delta);
        assert_eq!(pc.trace_count(), 1, "master segments survive the merge");
        assert!(pc.traces[head as usize].is_some(), "the surviving segment is A's");
    }

    /// chain_enter: a compiled target is entered directly (first follow
    /// patches the link, later follows take the fast path), a mid-chain
    /// target earns its own superblock, a config head without a segment
    /// defers to trace_enter, and the knob/threshold disable it.
    #[test]
    fn chain_enter_patches_and_compiles_mid_chain() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
        pc.set_outcome(load, OutcomeKey::Interval(6));
        // Hot path: mid-chain continuation after the load.
        let mid = pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        pc.set_hotness_threshold(0);

        // A config head with a compiled segment chains directly.
        let seg = pc.trace_enter(head).expect("head compiles at threshold 0");
        let chained = pc.chain_enter(head).expect("chain into compiled head");
        assert!(Arc::ptr_eq(&seg, &chained));
        assert_eq!(pc.stats().chained_exits, 1);
        assert_eq!(pc.stats().chain_follows, 0, "first follow patches the link");
        let again = pc.chain_enter(head).expect("patched link");
        assert!(Arc::ptr_eq(&seg, &again));
        assert_eq!(pc.stats().chain_follows, 1, "second follow is the fast path");

        // A mid-chain target compiles its own (unanchored) superblock.
        let mid_seg = pc.chain_enter(mid).expect("mid-chain target compiles at threshold 0");
        assert!(matches!(
            mid_seg.ops[0],
            TraceOp::Bulk { cycles: 2, anchored: false, .. }
        ));
        assert_eq!(pc.trace_count(), 2);

        // Chain targets compile eagerly (next-executing-tail): even far
        // below the threshold, an exit into an uncompiled head compiles
        // it — control only gets here out of an already-hot segment. The
        // hotness counter is left alone; it only gates initial promotion.
        assert_eq!(pc.register_config(b"B"), ConfigLookup::Miss);
        let b = pc.record_action(advance(3));
        pc.record_action(ActionKind::Finish);
        pc.set_hotness_threshold(1000);
        assert!(pc.chain_enter(b).is_some(), "chain target compiles eagerly");
        assert_eq!(pc.hotness[b as usize], 0, "chain_enter left the counter alone");
        assert_eq!(pc.trace_count(), 3);

        // The knob and the disabled threshold both stop chaining.
        pc.set_chaining(false);
        assert!(pc.chain_enter(head).is_none());
        pc.set_chaining(true);
        pc.set_hotness_threshold(u32::MAX);
        assert!(pc.chain_enter(head).is_none());
    }

    /// segment_valid accepts a segment against the arena it was compiled
    /// from and rejects arenas whose covered nodes differ.
    #[test]
    fn segment_revalidation() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 2 });
        pc.set_outcome(load, OutcomeKey::Interval(6));
        pc.record_action(advance(2));
        pc.record_action(ActionKind::Finish);
        let seg = pc.compile_trace(head).expect("compilable");
        assert!(pc.segment_valid(&seg), "fresh compile matches its own arena");

        // A different cache whose node ids line up but whose actions
        // differ re-hashes to a different fingerprint.
        let mut other = PActionCache::new(Policy::Unbounded);
        assert_eq!(other.register_config(b"A"), ConfigLookup::Miss);
        other.record_action(advance(7));
        other.record_action(ActionKind::IssueStore { sq_index: 0 });
        other.record_action(advance(2));
        other.record_action(ActionKind::Finish);
        assert!(!other.segment_valid(&seg), "diverged arena is rejected");

        // A too-short arena is rejected on bounds alone.
        let mut short = PActionCache::new(Policy::Unbounded);
        assert_eq!(short.register_config(b"A"), ConfigLookup::Miss);
        short.record_action(advance(1));
        assert!(!short.segment_valid(&seg));
    }

    /// The side-tabled representation keeps ops within 24 bytes — the
    /// compile-time assert enforces it, this test documents the number.
    #[test]
    fn trace_ops_stay_compact() {
        assert!(std::mem::size_of::<TraceOp>() <= 24, "{}", std::mem::size_of::<TraceOp>());
        assert_eq!(std::mem::size_of::<Touched>(), 8);
        assert_eq!(std::mem::size_of::<EdgeRange>(), 8);
    }

    /// The op cap bounds segment size on pathologically long chains.
    #[test]
    fn op_cap_cuts_long_chains() {
        let mut pc = PActionCache::new(Policy::Unbounded);
        assert_eq!(pc.register_config(b"A"), ConfigLookup::Miss);
        let head = pc.record_action(advance(1));
        // Alternate stores and advances so nothing aggregates away and no
        // node repeats: every pair costs two ops.
        for i in 0..2 * MAX_TRACE_OPS as u32 {
            pc.record_action(ActionKind::IssueStore { sq_index: i });
            pc.record_action(advance(1));
        }
        pc.record_action(ActionKind::Finish);
        let seg = pc.compile_trace(head).expect("compilable");
        // The cap is checked per node; a node may emit a flushed bulk op
        // plus its own op before the check fires again, and the cut
        // itself costs one more.
        assert!(seg.ops.len() <= MAX_TRACE_OPS + 3, "{}", seg.ops.len());
        assert!(matches!(seg.ops.last(), Some(TraceOp::Cut { .. })));
    }
}
