//! The `fastsim-snapshot/v1` binary format: durable, portable encoding of
//! a frozen [`CacheSnapshot`].
//!
//! Memoized warmth is only worth persisting if a stale or damaged file can
//! *never* mis-replay, so the format is built for strict
//! reject-don't-guess decoding:
//!
//! * a fixed header carries a magic, the format version and the full
//!   (program, µ-architecture, hierarchy) fingerprint the snapshot was
//!   recorded under — a reader for the wrong version or the wrong model
//!   gets a typed error before any payload is touched;
//! * the payload is a fixed sequence of tagged **sections** (meta, stats,
//!   nodes, index, traces, hotness, chained), each carrying its own byte
//!   length and an FNV-1a checksum — truncation, bit flips and
//!   section-length lies are all detected per section;
//! * every enum tag, node id, arena offset and side-table range is
//!   bounds-checked during decode, configuration fingerprints are
//!   re-derived from the stored bytes, and compiled trace segments are
//!   structurally validated — a decoded snapshot can be thawed and merged
//!   without any panic path, and thaw-side segment revalidation
//!   (fingerprint + edge-prefix checks) still runs on top.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "FSIMSNAP" (8) | version u32 | fingerprint u64 |
//!          section_count u32 | reserved u64 (must be 0)
//! section  tag u32 | len u64 | payload[len] | checksum u64
//! ```
//!
//! Sections appear in a fixed order (`meta`, `stats`, `nodes`, `index`,
//! `traces`, `hotness`, `chained`); see `docs/snapshots.md` for the field
//! tables. Encoding is canonical: re-encoding a decoded snapshot
//! reproduces the input bytes exactly, which the golden fixtures under
//! `tests/fixtures/` pin.

use crate::action::{ActionKind, NodeId, OutcomeKey, RetireCounts};
use crate::cache::{Node, Successors};
use crate::index::{ConfigIndex, ConfigRef};
use crate::policy::Policy;
use crate::snapshot::CacheSnapshot;
use crate::trace::{EdgeRange, Touched, TouchedKind, TraceOp, TraceSegment};
use crate::MemoStats;
use fastsim_hash::hash64;
use std::fmt;
use std::sync::Arc;

/// Magic bytes opening every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FSIMSNAP";

/// The format version this build writes and the only one it reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Number of sections in a v1 snapshot.
const SECTION_COUNT: u32 = 7;

/// Fixed header length in bytes.
const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8;

/// Section tags, in the order sections must appear.
const SECTIONS: [(u32, &str); 7] = [
    (1, "meta"),
    (2, "stats"),
    (3, "nodes"),
    (4, "index"),
    (5, "traces"),
    (6, "hotness"),
    (7, "chained"),
];

/// Why a snapshot file was rejected. Every variant is a hard rejection:
/// the decoder never guesses, pads or partially applies a damaged file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header carries a format version this build does not read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The header fingerprint does not match the model the caller is
    /// loading for.
    FingerprintMismatch {
        /// The fingerprint the caller expected.
        expected: u64,
        /// The fingerprint found in the header.
        found: u64,
    },
    /// The file ends before a section (or the header) is complete.
    Truncated {
        /// The section being read when the data ran out.
        section: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not hash to its stored checksum.
    ChecksumMismatch {
        /// The damaged section.
        section: &'static str,
    },
    /// A section parsed but its content is invalid (bad tag, out-of-bounds
    /// id or range, non-canonical layout).
    Corrupt {
        /// The offending section.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Bytes remain after the last section — the file is not a single
    /// canonical snapshot.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotDecodeError::BadMagic => write!(f, "not a fastsim-snapshot/v1 file"),
            SnapshotDecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotDecodeError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match expected {expected:#018x}"
            ),
            SnapshotDecodeError::Truncated { section, needed, available } => write!(
                f,
                "truncated in `{section}`: needed {needed} bytes, {available} available"
            ),
            SnapshotDecodeError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            SnapshotDecodeError::Corrupt { section, detail } => {
                write!(f, "corrupt section `{section}`: {detail}")
            }
            SnapshotDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last section")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn w8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn w32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn w_action(out: &mut Vec<u8>, kind: &ActionKind) {
    match *kind {
        ActionKind::Advance { cycles, retired } => {
            w8(out, 0);
            w32(out, cycles);
            w_retire(out, &retired);
        }
        ActionKind::FetchRecord => w8(out, 1),
        ActionKind::IssueLoad { lq_index } => {
            w8(out, 2);
            w32(out, lq_index);
        }
        ActionKind::PollLoad { lq_index } => {
            w8(out, 3);
            w32(out, lq_index);
        }
        ActionKind::IssueStore { sq_index } => {
            w8(out, 4);
            w32(out, sq_index);
        }
        ActionKind::CancelLoad { lq_index } => {
            w8(out, 5);
            w32(out, lq_index);
        }
        ActionKind::Rollback { ctrl_index } => {
            w8(out, 6);
            w32(out, ctrl_index);
        }
        ActionKind::Finish => w8(out, 7),
    }
}

fn w_retire(out: &mut Vec<u8>, r: &RetireCounts) {
    for v in [r.insts, r.loads, r.stores, r.ctrls, r.branches] {
        w32(out, v);
    }
}

fn w_outcome(out: &mut Vec<u8>, key: &OutcomeKey) {
    match *key {
        OutcomeKey::Branch { taken, mispredicted } => {
            w8(out, 0);
            w8(out, u8::from(taken) | (u8::from(mispredicted) << 1));
        }
        OutcomeKey::Indirect { target, mispredicted } => {
            w8(out, 1);
            w32(out, target);
            w_bool(out, mispredicted);
        }
        OutcomeKey::Halted => w8(out, 2),
        OutcomeKey::Blocked => w8(out, 3),
        OutcomeKey::Interval(v) => {
            w8(out, 4);
            w32(out, v);
        }
        OutcomeKey::PollReady => w8(out, 5),
        OutcomeKey::PollWait(v) => {
            w8(out, 6);
            w32(out, v);
        }
    }
}

fn encode_meta(snap: &CacheSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    let (tag, limit) = match snap.policy {
        Policy::Unbounded => (0u8, 0usize),
        Policy::FlushOnFull { limit } => (1, limit),
        Policy::CopyingGc { limit } => (2, limit),
        Policy::GenerationalGc { limit } => (3, limit),
    };
    w8(&mut out, tag);
    w64(&mut out, limit as u64);
    w64(&mut out, snap.base_len as u64);
    w64(&mut out, snap.version);
    w64(&mut out, snap.nodes.len() as u64);
    out
}

fn encode_stats(stats: &MemoStats) -> Vec<u8> {
    let mut out = Vec::new();
    for v in [
        stats.static_configs,
        stats.static_actions,
        stats.bytes as u64,
        stats.peak_bytes as u64,
        stats.flushes,
        stats.collections,
        stats.gc_survived_bytes,
        stats.gc_scanned_bytes,
        stats.config_hits,
        stats.config_misses,
        stats.trace_segments_compiled,
        stats.replay_segments_entered,
        stats.replay_trace_ops,
        stats.replay_bailouts,
        stats.chained_exits,
        stats.chain_follows,
        stats.segments_thawed,
    ] {
        w64(&mut out, v);
    }
    out
}

fn encode_nodes(snap: &CacheSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    for (node, &accessed) in snap.nodes.iter().zip(&snap.accessed) {
        let mut flags = 0u8;
        if node.tenured {
            flags |= 1;
        }
        if accessed {
            flags |= 2;
        }
        if node.config.is_some() {
            flags |= 4;
        }
        w8(&mut out, flags);
        w_action(&mut out, &node.kind);
        match &node.next {
            Successors::Single(None) => w8(&mut out, 0),
            Successors::Single(Some(id)) => {
                w8(&mut out, 1);
                w32(&mut out, *id);
            }
            Successors::Multi(edges) => {
                w8(&mut out, 2);
                w32(&mut out, edges.len() as u32);
                for (key, id) in edges {
                    w_outcome(&mut out, key);
                    w32(&mut out, *id);
                }
            }
        }
        if let Some(cref) = node.config {
            w32(&mut out, cref.offset);
            w32(&mut out, cref.len);
            w64(&mut out, cref.fp);
        }
    }
    out
}

fn encode_index(index: &ConfigIndex) -> Vec<u8> {
    let mut out = Vec::new();
    let arena = index.arena();
    w64(&mut out, arena.len() as u64);
    out.extend_from_slice(arena);
    w64(&mut out, index.len() as u64);
    for (cref, head) in index.slot_entries() {
        w32(&mut out, cref.offset);
        w32(&mut out, cref.len);
        w64(&mut out, cref.fp);
        w32(&mut out, head);
    }
    out
}

fn encode_traces(snap: &CacheSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    let present: Vec<(usize, &Arc<TraceSegment>)> =
        snap.traces.iter().enumerate().filter_map(|(i, t)| t.as_ref().map(|s| (i, s))).collect();
    w64(&mut out, present.len() as u64);
    for (node, seg) in present {
        w32(&mut out, node as u32);
        w64(&mut out, seg.ops.len() as u64);
        for op in &seg.ops {
            w_trace_op(&mut out, op);
        }
        w64(&mut out, seg.touched.len() as u64);
        for &id in &seg.touched {
            w32(&mut out, id);
        }
        w64(&mut out, seg.retires.len() as u64);
        for r in &seg.retires {
            w_retire(&mut out, r);
        }
        w64(&mut out, seg.edges.len() as u64);
        for (key, id) in &seg.edges {
            w_outcome(&mut out, key);
            w32(&mut out, *id);
        }
        w64(&mut out, seg.fp);
        w32(&mut out, seg.max_node);
    }
    out
}

fn w_touched(out: &mut Vec<u8>, t: Touched) {
    match t.kind() {
        TouchedKind::Span(first) => {
            w8(out, 0);
            w32(out, first);
        }
        TouchedKind::List(start, len) => {
            w8(out, 1);
            w32(out, start);
            w32(out, len);
        }
    }
}

fn w_trace_op(out: &mut Vec<u8>, op: &TraceOp) {
    match *op {
        TraceOp::Bulk { cycles, retired, count, touched, anchored } => {
            w8(out, 0);
            w32(out, cycles);
            w32(out, retired);
            w32(out, count);
            w_touched(out, touched);
            w_bool(out, anchored);
        }
        TraceOp::IssueStore { node, sq_index, anchored } => {
            w8(out, 1);
            w32(out, node);
            w32(out, sq_index);
            w_bool(out, anchored);
        }
        TraceOp::CancelLoad { node, lq_index, anchored } => {
            w8(out, 2);
            w32(out, node);
            w32(out, lq_index);
            w_bool(out, anchored);
        }
        TraceOp::Rollback { node, ctrl_index, anchored } => {
            w8(out, 3);
            w32(out, node);
            w32(out, ctrl_index);
            w_bool(out, anchored);
        }
        TraceOp::Fetch { node, edges, anchored } => {
            w8(out, 4);
            w32(out, node);
            w32(out, edges.start);
            w32(out, edges.len);
            w_bool(out, anchored);
        }
        TraceOp::IssueLoad { node, lq_index, edges, anchored } => {
            w8(out, 5);
            w32(out, node);
            w32(out, lq_index);
            w32(out, edges.start);
            w32(out, edges.len);
            w_bool(out, anchored);
        }
        TraceOp::PollLoad { node, lq_index, edges, anchored } => {
            w8(out, 6);
            w32(out, node);
            w32(out, lq_index);
            w32(out, edges.start);
            w32(out, edges.len);
            w_bool(out, anchored);
        }
        TraceOp::Finish { node, anchored } => {
            w8(out, 7);
            w32(out, node);
            w_bool(out, anchored);
        }
        TraceOp::Cut { node } => {
            w8(out, 8);
            w32(out, node);
        }
        TraceOp::Jump { op, node } => {
            w8(out, 9);
            w32(out, op);
            w32(out, node);
        }
    }
}

fn encode_hotness(snap: &CacheSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(snap.hotness.len() * 4);
    for &h in &snap.hotness {
        w32(&mut out, h);
    }
    out
}

fn encode_chained(snap: &CacheSnapshot) -> Vec<u8> {
    let mut out = vec![0u8; snap.chained.len().div_ceil(8)];
    for (i, &c) in snap.chained.iter().enumerate() {
        if c {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Encodes a frozen snapshot (plus the model `fingerprint` it was recorded
/// under) into the `fastsim-snapshot/v1` byte format.
///
/// Encoding is canonical and deterministic: equal snapshots produce equal
/// bytes, and [`decode_snapshot`] followed by `encode_snapshot`
/// reproduces the input exactly.
pub fn encode_snapshot(snap: &CacheSnapshot, fingerprint: u64) -> Vec<u8> {
    let payloads = [
        encode_meta(snap),
        encode_stats(&snap.stats),
        encode_nodes(snap),
        encode_index(&snap.index),
        encode_traces(snap),
        encode_hotness(snap),
        encode_chained(snap),
    ];
    let body: usize = payloads.iter().map(|p| p.len() + 4 + 8 + 8).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + body);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    w32(&mut out, SNAPSHOT_VERSION);
    w64(&mut out, fingerprint);
    w32(&mut out, SECTION_COUNT);
    w64(&mut out, 0); // reserved
    for ((tag, _), payload) in SECTIONS.iter().zip(payloads) {
        w32(&mut out, *tag);
        w64(&mut out, payload.len() as u64);
        let checksum = hash64(&payload);
        out.extend_from_slice(&payload);
        w64(&mut out, checksum);
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A strict little-endian reader over one section's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Reader<'a> {
        Reader { buf, pos: 0, section }
    }

    fn truncated(&self, needed: usize) -> SnapshotDecodeError {
        SnapshotDecodeError::Truncated {
            section: self.section,
            needed,
            available: self.buf.len() - self.pos,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> SnapshotDecodeError {
        SnapshotDecodeError::Corrupt { section: self.section, detail: detail.into() }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotDecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(self.truncated(n));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotDecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, SnapshotDecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.corrupt(format!("non-canonical bool byte {v}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, SnapshotDecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotDecodeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// A u64 that must fit a count/length of in-memory items.
    fn count(&mut self, what: &str) -> Result<usize, SnapshotDecodeError> {
        let v = self.u64()?;
        // No section can describe more items than it has payload bytes:
        // every item costs at least one byte, so this bound rejects
        // length lies before any allocation.
        let cap = self.buf.len();
        if v > cap as u64 {
            return Err(self.corrupt(format!("{what} count {v} exceeds section size {cap}")));
        }
        Ok(v as usize)
    }

    fn done(&self) -> Result<(), SnapshotDecodeError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} unread payload bytes after the last field",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn retire(&mut self) -> Result<RetireCounts, SnapshotDecodeError> {
        Ok(RetireCounts {
            insts: self.u32()?,
            loads: self.u32()?,
            stores: self.u32()?,
            ctrls: self.u32()?,
            branches: self.u32()?,
        })
    }

    fn action(&mut self) -> Result<ActionKind, SnapshotDecodeError> {
        Ok(match self.u8()? {
            0 => ActionKind::Advance { cycles: self.u32()?, retired: self.retire()? },
            1 => ActionKind::FetchRecord,
            2 => ActionKind::IssueLoad { lq_index: self.u32()? },
            3 => ActionKind::PollLoad { lq_index: self.u32()? },
            4 => ActionKind::IssueStore { sq_index: self.u32()? },
            5 => ActionKind::CancelLoad { lq_index: self.u32()? },
            6 => ActionKind::Rollback { ctrl_index: self.u32()? },
            7 => ActionKind::Finish,
            t => return Err(self.corrupt(format!("unknown action tag {t}"))),
        })
    }

    fn outcome(&mut self) -> Result<OutcomeKey, SnapshotDecodeError> {
        Ok(match self.u8()? {
            0 => {
                let flags = self.u8()?;
                if flags > 3 {
                    return Err(self.corrupt(format!("branch outcome flags {flags}")));
                }
                OutcomeKey::Branch { taken: flags & 1 != 0, mispredicted: flags & 2 != 0 }
            }
            1 => OutcomeKey::Indirect { target: self.u32()?, mispredicted: self.bool()? },
            2 => OutcomeKey::Halted,
            3 => OutcomeKey::Blocked,
            4 => OutcomeKey::Interval(self.u32()?),
            5 => OutcomeKey::PollReady,
            6 => OutcomeKey::PollWait(self.u32()?),
            t => return Err(self.corrupt(format!("unknown outcome tag {t}"))),
        })
    }
}

/// Splits the file into the header fingerprint plus the seven
/// checksum-verified section payloads.
fn split_sections(bytes: &[u8]) -> Result<(u64, Vec<&[u8]>), SnapshotDecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotDecodeError::Truncated {
            section: "header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotDecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotDecodeError::UnsupportedVersion { found: version });
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let section_count = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let reserved = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    if section_count != SECTION_COUNT {
        return Err(SnapshotDecodeError::Corrupt {
            section: "header",
            detail: format!("section count {section_count} (expected {SECTION_COUNT})"),
        });
    }
    if reserved != 0 {
        return Err(SnapshotDecodeError::Corrupt {
            section: "header",
            detail: format!("reserved header field {reserved:#x} is not zero"),
        });
    }

    let mut pos = HEADER_LEN;
    let mut payloads = Vec::with_capacity(SECTIONS.len());
    for (tag, name) in SECTIONS {
        let frame = 4 + 8;
        if bytes.len() - pos < frame {
            return Err(SnapshotDecodeError::Truncated {
                section: name,
                needed: frame,
                available: bytes.len() - pos,
            });
        }
        let found_tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if found_tag != tag {
            return Err(SnapshotDecodeError::Corrupt {
                section: name,
                detail: format!("section tag {found_tag} (expected {tag})"),
            });
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        pos += frame;
        let remaining = bytes.len() - pos;
        // The length lie check: a section cannot claim more payload than
        // the file holds (checked before the cast so a absurd u64 cannot
        // wrap on 32-bit targets).
        if len > remaining as u64 || remaining - (len as usize) < 8 {
            return Err(SnapshotDecodeError::Truncated {
                section: name,
                needed: len.saturating_add(8) as usize,
                available: remaining,
            });
        }
        let payload = &bytes[pos..pos + len as usize];
        pos += len as usize;
        let stored = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        if hash64(payload) != stored {
            return Err(SnapshotDecodeError::ChecksumMismatch { section: name });
        }
        payloads.push(payload);
    }
    if pos != bytes.len() {
        return Err(SnapshotDecodeError::TrailingBytes { extra: bytes.len() - pos });
    }
    Ok((fingerprint, payloads))
}

struct Meta {
    policy: Policy,
    base_len: usize,
    version: u64,
    node_count: usize,
}

fn decode_meta(payload: &[u8]) -> Result<Meta, SnapshotDecodeError> {
    let mut r = Reader::new(payload, "meta");
    let tag = r.u8()?;
    let limit = r.u64()?;
    let limit_usize = usize::try_from(limit)
        .map_err(|_| r.corrupt(format!("policy limit {limit} exceeds this platform")))?;
    let policy = match tag {
        0 if limit == 0 => Policy::Unbounded,
        0 => return Err(r.corrupt("unbounded policy with a non-zero limit")),
        1 => Policy::FlushOnFull { limit: limit_usize },
        2 => Policy::CopyingGc { limit: limit_usize },
        3 => Policy::GenerationalGc { limit: limit_usize },
        t => return Err(r.corrupt(format!("unknown policy tag {t}"))),
    };
    let base_len = r.u64()?;
    let version = r.u64()?;
    let node_count = r.u64()?;
    r.done()?;
    let node_count = usize::try_from(node_count)
        .map_err(|_| SnapshotDecodeError::Corrupt {
            section: "meta",
            detail: format!("node count {node_count} exceeds this platform"),
        })?;
    if node_count > u32::MAX as usize {
        return Err(SnapshotDecodeError::Corrupt {
            section: "meta",
            detail: format!("node count {node_count} exceeds the 32-bit id space"),
        });
    }
    if base_len > node_count as u64 {
        return Err(SnapshotDecodeError::Corrupt {
            section: "meta",
            detail: format!("base length {base_len} exceeds node count {node_count}"),
        });
    }
    Ok(Meta { policy, base_len: base_len as usize, version, node_count })
}

fn decode_stats(payload: &[u8]) -> Result<MemoStats, SnapshotDecodeError> {
    let mut r = Reader::new(payload, "stats");
    let mut stats = MemoStats::default();
    let usize_field = |r: &mut Reader<'_>, name: &str| -> Result<usize, SnapshotDecodeError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| SnapshotDecodeError::Corrupt {
            section: "stats",
            detail: format!("{name} {v} exceeds this platform"),
        })
    };
    stats.static_configs = r.u64()?;
    stats.static_actions = r.u64()?;
    stats.bytes = usize_field(&mut r, "bytes")?;
    stats.peak_bytes = usize_field(&mut r, "peak_bytes")?;
    stats.flushes = r.u64()?;
    stats.collections = r.u64()?;
    stats.gc_survived_bytes = r.u64()?;
    stats.gc_scanned_bytes = r.u64()?;
    stats.config_hits = r.u64()?;
    stats.config_misses = r.u64()?;
    stats.trace_segments_compiled = r.u64()?;
    stats.replay_segments_entered = r.u64()?;
    stats.replay_trace_ops = r.u64()?;
    stats.replay_bailouts = r.u64()?;
    stats.chained_exits = r.u64()?;
    stats.chain_follows = r.u64()?;
    stats.segments_thawed = r.u64()?;
    r.done()?;
    Ok(stats)
}

fn decode_nodes(
    payload: &[u8],
    node_count: usize,
) -> Result<(Vec<Node>, Vec<bool>), SnapshotDecodeError> {
    let mut r = Reader::new(payload, "nodes");
    let mut nodes = Vec::with_capacity(node_count);
    let mut accessed = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let flags = r.u8()?;
        if flags > 7 {
            return Err(r.corrupt(format!("node {i}: unknown flag bits {flags:#x}")));
        }
        let kind = r.action()?;
        let next = match r.u8()? {
            0 => Successors::Single(None),
            1 => Successors::Single(Some(r.u32()?)),
            2 => {
                let n = r.u32()? as usize;
                if n > node_count.max(payload.len()) {
                    return Err(r.corrupt(format!("node {i}: edge count {n} is implausible")));
                }
                let mut edges = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = r.outcome()?;
                    let id = r.u32()?;
                    edges.push((key, id));
                }
                Successors::Multi(edges)
            }
            t => return Err(r.corrupt(format!("node {i}: unknown successor tag {t}"))),
        };
        let config = if flags & 4 != 0 {
            Some(ConfigRef { offset: r.u32()?, len: r.u32()?, fp: r.u64()? })
        } else {
            None
        };
        nodes.push(Node { kind, next, config, tenured: flags & 1 != 0 });
        accessed.push(flags & 2 != 0);
    }
    r.done()?;
    Ok((nodes, accessed))
}

fn decode_index(payload: &[u8], node_count: usize) -> Result<ConfigIndex, SnapshotDecodeError> {
    let mut r = Reader::new(payload, "index");
    let arena_len = r.count("arena byte")?;
    let arena = r.bytes(arena_len)?.to_vec();
    let slot_count = r.count("slot")?;
    let mut entries: Vec<(ConfigRef, NodeId)> = Vec::with_capacity(slot_count);
    for i in 0..slot_count {
        let cref = ConfigRef { offset: r.u32()?, len: r.u32()?, fp: r.u64()? };
        let head = r.u32()?;
        let end = cref.offset as u64 + cref.len as u64;
        if end > arena.len() as u64 {
            return Err(r.corrupt(format!(
                "slot {i}: arena range {}..{end} exceeds arena length {}",
                cref.offset,
                arena.len()
            )));
        }
        if (head as usize) >= node_count {
            return Err(r.corrupt(format!(
                "slot {i}: head node {head} out of bounds ({node_count} nodes)"
            )));
        }
        let bytes = &arena[cref.offset as usize..(cref.offset + cref.len) as usize];
        if hash64(bytes) != cref.fp {
            return Err(r.corrupt(format!(
                "slot {i}: stored fingerprint does not match its configuration bytes"
            )));
        }
        entries.push((cref, head));
    }
    r.done()?;
    Ok(ConfigIndex::from_parts(arena, entries))
}

fn decode_traces(
    payload: &[u8],
    node_count: usize,
) -> Result<Vec<Option<Arc<TraceSegment>>>, SnapshotDecodeError> {
    let mut r = Reader::new(payload, "traces");
    let mut traces: Vec<Option<Arc<TraceSegment>>> = vec![None; node_count];
    let present = r.count("segment")?;
    let mut prev: Option<u32> = None;
    for s in 0..present {
        let node = r.u32()?;
        if (node as usize) >= node_count {
            return Err(r.corrupt(format!(
                "segment {s}: node {node} out of bounds ({node_count} nodes)"
            )));
        }
        if prev.is_some_and(|p| node <= p) {
            return Err(r.corrupt(format!(
                "segment {s}: node {node} not strictly ascending (non-canonical)"
            )));
        }
        prev = Some(node);
        let seg = decode_segment(&mut r, s, node_count)?;
        traces[node as usize] = Some(Arc::new(seg));
    }
    r.done()?;
    Ok(traces)
}

fn decode_segment(
    r: &mut Reader<'_>,
    s: usize,
    node_count: usize,
) -> Result<TraceSegment, SnapshotDecodeError> {
    let op_count = r.count("trace op")?;
    let mut raw_ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        raw_ops.push(r_trace_op(r)?);
    }
    let touched_count = r.count("touched id")?;
    let mut touched = Vec::with_capacity(touched_count);
    for _ in 0..touched_count {
        let id = r.u32()?;
        if (id as usize) >= node_count {
            return Err(r.corrupt(format!("segment {s}: touched node {id} out of bounds")));
        }
        touched.push(id);
    }
    let retire_count = r.count("retire record")?;
    let mut retires = Vec::with_capacity(retire_count);
    for _ in 0..retire_count {
        retires.push(r.retire()?);
    }
    let edge_count = r.count("edge")?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let key = r.outcome()?;
        let id = r.u32()?;
        if (id as usize) >= node_count {
            return Err(r.corrupt(format!("segment {s}: edge target {id} out of bounds")));
        }
        edges.push((key, id));
    }
    let fp = r.u64()?;
    let max_node = r.u32()?;
    if (max_node as usize) >= node_count {
        return Err(r.corrupt(format!("segment {s}: max node {max_node} out of bounds")));
    }

    // Structural validation of every op against the side tables and the
    // arena, so thaw-side revalidation (`segment_valid`) can never index
    // out of bounds on a decoded segment.
    let seg = TraceSegment { ops: Vec::new(), touched, retires, edges, fp, max_node };
    let mut ops = Vec::with_capacity(raw_ops.len());
    for (i, op) in raw_ops.into_iter().enumerate() {
        let bad = |detail: String| SnapshotDecodeError::Corrupt {
            section: "traces",
            detail: format!("segment {s} op {i}: {detail}"),
        };
        let check_node = |id: NodeId, what: &str| {
            if (id as usize) >= node_count {
                Err(bad(format!("{what} node {id} out of bounds")))
            } else {
                Ok(())
            }
        };
        let check_edges = |range: EdgeRange| {
            let end = range.start as u64 + range.len as u64;
            if end > seg.edges.len() as u64 {
                Err(bad(format!(
                    "edge range {}..{end} exceeds edge table length {}",
                    range.start,
                    seg.edges.len()
                )))
            } else {
                Ok(())
            }
        };
        match op {
            TraceOp::Bulk { retired, count, touched, .. } => {
                if (retired as usize) >= seg.retires.len() {
                    return Err(bad(format!("retire index {retired} out of bounds")));
                }
                match touched.kind() {
                    TouchedKind::Span(first) => {
                        if u64::from(first) + u64::from(count) > node_count as u64 {
                            return Err(bad(format!(
                                "span {first}+{count} exceeds node count {node_count}"
                            )));
                        }
                    }
                    TouchedKind::List(start, len) => {
                        if u64::from(start) + u64::from(len) > seg.touched.len() as u64 {
                            return Err(bad(format!(
                                "touched range {start}+{len} exceeds list length {}",
                                seg.touched.len()
                            )));
                        }
                    }
                }
            }
            TraceOp::IssueStore { node, .. }
            | TraceOp::CancelLoad { node, .. }
            | TraceOp::Rollback { node, .. }
            | TraceOp::Finish { node, .. }
            | TraceOp::Cut { node } => check_node(node, "covered")?,
            TraceOp::Fetch { node, edges, .. } => {
                check_node(node, "dispatch")?;
                check_edges(edges)?;
            }
            TraceOp::IssueLoad { node, edges, .. } | TraceOp::PollLoad { node, edges, .. } => {
                check_node(node, "dispatch")?;
                check_edges(edges)?;
            }
            TraceOp::Jump { op: target, node } => {
                check_node(node, "jump")?;
                if (target as usize) >= op_count {
                    return Err(bad(format!("jump target op {target} out of bounds")));
                }
            }
        }
        ops.push(op);
    }
    Ok(TraceSegment { ops, ..seg })
}

fn r_trace_op(r: &mut Reader<'_>) -> Result<TraceOp, SnapshotDecodeError> {
    Ok(match r.u8()? {
        0 => {
            let cycles = r.u32()?;
            let retired = r.u32()?;
            let count = r.u32()?;
            let touched = match r.u8()? {
                0 => Touched::span(r.u32()?),
                1 => {
                    let start = r.u32()?;
                    let len = r.u32()?;
                    if len == u32::MAX {
                        return Err(r.corrupt("touched list length collides with span sentinel"));
                    }
                    Touched::list(start, len)
                }
                t => return Err(r.corrupt(format!("unknown touched tag {t}"))),
            };
            TraceOp::Bulk { cycles, retired, count, touched, anchored: r.bool()? }
        }
        1 => TraceOp::IssueStore { node: r.u32()?, sq_index: r.u32()?, anchored: r.bool()? },
        2 => TraceOp::CancelLoad { node: r.u32()?, lq_index: r.u32()?, anchored: r.bool()? },
        3 => TraceOp::Rollback { node: r.u32()?, ctrl_index: r.u32()?, anchored: r.bool()? },
        4 => TraceOp::Fetch {
            node: r.u32()?,
            edges: EdgeRange { start: r.u32()?, len: r.u32()? },
            anchored: r.bool()?,
        },
        5 => TraceOp::IssueLoad {
            node: r.u32()?,
            lq_index: r.u32()?,
            edges: EdgeRange { start: r.u32()?, len: r.u32()? },
            anchored: r.bool()?,
        },
        6 => TraceOp::PollLoad {
            node: r.u32()?,
            lq_index: r.u32()?,
            edges: EdgeRange { start: r.u32()?, len: r.u32()? },
            anchored: r.bool()?,
        },
        7 => TraceOp::Finish { node: r.u32()?, anchored: r.bool()? },
        8 => TraceOp::Cut { node: r.u32()? },
        9 => TraceOp::Jump { op: r.u32()?, node: r.u32()? },
        t => return Err(r.corrupt(format!("unknown trace op tag {t}"))),
    })
}

fn decode_hotness(payload: &[u8], node_count: usize) -> Result<Vec<u32>, SnapshotDecodeError> {
    if payload.len() != node_count * 4 {
        return Err(SnapshotDecodeError::Corrupt {
            section: "hotness",
            detail: format!("{} bytes for {node_count} nodes (expected {})", payload.len(), node_count * 4),
        });
    }
    let mut r = Reader::new(payload, "hotness");
    let mut hotness = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        hotness.push(r.u32()?);
    }
    r.done()?;
    Ok(hotness)
}

fn decode_chained(payload: &[u8], node_count: usize) -> Result<Vec<bool>, SnapshotDecodeError> {
    let expected = node_count.div_ceil(8);
    if payload.len() != expected {
        return Err(SnapshotDecodeError::Corrupt {
            section: "chained",
            detail: format!("{} bytes for {node_count} nodes (expected {expected})", payload.len()),
        });
    }
    // Trailing pad bits must be zero (canonical form).
    if !node_count.is_multiple_of(8) {
        let last = payload[expected - 1];
        if last >> (node_count % 8) != 0 {
            return Err(SnapshotDecodeError::Corrupt {
                section: "chained",
                detail: "non-zero padding bits in the final byte".to_string(),
            });
        }
    }
    Ok((0..node_count).map(|i| payload[i / 8] & (1 << (i % 8)) != 0).collect())
}

/// Validates the cross-section invariants a well-formed snapshot upholds:
/// successor ids and configuration references in bounds.
fn cross_validate(snap: &CacheSnapshot) -> Result<(), SnapshotDecodeError> {
    let node_count = snap.nodes.len();
    let arena_len = snap.index.arena().len() as u64;
    let bad = |detail: String| SnapshotDecodeError::Corrupt { section: "nodes", detail };
    for (i, node) in snap.nodes.iter().enumerate() {
        match &node.next {
            Successors::Single(Some(id)) if (*id as usize) >= node_count => {
                return Err(bad(format!("node {i}: successor {id} out of bounds")));
            }
            Successors::Multi(edges) => {
                for (_, id) in edges {
                    if (*id as usize) >= node_count {
                        return Err(bad(format!("node {i}: edge target {id} out of bounds")));
                    }
                }
            }
            _ => {}
        }
        if let Some(cref) = node.config {
            let end = cref.offset as u64 + cref.len as u64;
            if end > arena_len {
                return Err(bad(format!(
                    "node {i}: config bytes {}..{end} exceed arena length {arena_len}",
                    cref.offset
                )));
            }
            if hash64(snap.index.bytes_at(cref)) != cref.fp {
                return Err(bad(format!(
                    "node {i}: config fingerprint does not match its bytes"
                )));
            }
        }
    }
    Ok(())
}

/// Decodes a `fastsim-snapshot/v1` file.
///
/// When `expected_fingerprint` is given, the header fingerprint must match
/// it exactly — loading a snapshot recorded under a different program,
/// µ-architecture or hierarchy is a typed error, not a silent cold start
/// gone wrong.
///
/// Returns the decoded snapshot plus the fingerprint it was recorded
/// under.
///
/// # Errors
///
/// A [`SnapshotDecodeError`] naming exactly what was wrong; a damaged file
/// is never partially applied.
pub fn decode_snapshot(
    bytes: &[u8],
    expected_fingerprint: Option<u64>,
) -> Result<(CacheSnapshot, u64), SnapshotDecodeError> {
    let (fingerprint, payloads) = split_sections(bytes)?;
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(SnapshotDecodeError::FingerprintMismatch { expected, found: fingerprint });
        }
    }
    let meta = decode_meta(payloads[0])?;
    let stats = decode_stats(payloads[1])?;
    let (nodes, accessed) = decode_nodes(payloads[2], meta.node_count)?;
    let index = decode_index(payloads[3], meta.node_count)?;
    let traces = decode_traces(payloads[4], meta.node_count)?;
    let hotness = decode_hotness(payloads[5], meta.node_count)?;
    let chained = decode_chained(payloads[6], meta.node_count)?;
    let snap = CacheSnapshot {
        nodes,
        accessed,
        index,
        policy: meta.policy,
        stats,
        base_len: meta.base_len,
        version: meta.version,
        traces,
        hotness,
        chained,
    };
    cross_validate(&snap)?;
    Ok((snap, fingerprint))
}

/// Round-trip self-check used by tests and the corruption fuzzer: two
/// snapshots are wire-equal iff they encode to the same bytes under the
/// same fingerprint.
pub fn snapshots_wire_equal(a: &CacheSnapshot, b: &CacheSnapshot) -> bool {
    encode_snapshot(a, 0) == encode_snapshot(b, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConfigLookup, PActionCache};

    /// Builds a cache with a couple of configurations, an outcome branch
    /// and (optionally) a compiled trace segment, then freezes it.
    fn sample_snapshot(with_traces: bool) -> CacheSnapshot {
        let mut pc = PActionCache::new(Policy::Unbounded);
        if with_traces {
            pc.set_hotness_threshold(0);
        }
        assert_eq!(pc.register_config(b"config-A"), ConfigLookup::Miss);
        let head = pc.record_action(ActionKind::Advance {
            cycles: 4,
            retired: RetireCounts { insts: 2, ..RetireCounts::default() },
        });
        let load = pc.record_action(ActionKind::IssueLoad { lq_index: 0 });
        pc.set_outcome(load, OutcomeKey::Interval(6));
        pc.record_action(ActionKind::Advance { cycles: 6, retired: RetireCounts::default() });
        let fetch = pc.record_action(ActionKind::FetchRecord);
        pc.set_outcome(fetch, OutcomeKey::Branch { taken: true, mispredicted: false });
        assert_eq!(pc.register_config(b"config-B"), ConfigLookup::Miss);
        pc.record_action(ActionKind::IssueStore { sq_index: 1 });
        pc.record_action(ActionKind::Finish);
        if with_traces {
            // Promote config-A's chain into a compiled segment.
            let mut compiled = false;
            for _ in 0..4 {
                assert!(matches!(pc.register_config(b"config-A"), ConfigLookup::Hit(_)));
                compiled |= pc.trace_enter(head).is_some();
            }
            assert!(compiled, "chain compiled");
            assert!(pc.trace_count() > 0, "segment present in the freeze");
        }
        pc.freeze()
    }

    #[test]
    fn round_trips_bit_identically() {
        for with_traces in [false, true] {
            let snap = sample_snapshot(with_traces);
            let bytes = encode_snapshot(&snap, 0xdead_beef_cafe_f00d);
            let (back, fp) =
                decode_snapshot(&bytes, Some(0xdead_beef_cafe_f00d)).expect("decodes");
            assert_eq!(fp, 0xdead_beef_cafe_f00d);
            assert_eq!(back.config_count(), snap.config_count());
            assert_eq!(back.node_count(), snap.node_count());
            assert_eq!(back.stats(), snap.stats());
            assert_eq!(back.trace_count(), snap.trace_count());
            // Canonical encoding: decode → encode reproduces the bytes.
            assert_eq!(encode_snapshot(&back, 0xdead_beef_cafe_f00d), bytes);
            assert!(snapshots_wire_equal(&snap, &back));
        }
    }

    #[test]
    fn decoded_snapshot_thaws_and_replays() {
        let snap = sample_snapshot(true);
        let bytes = encode_snapshot(&snap, 1);
        let (back, _) = decode_snapshot(&bytes, None).expect("decodes");
        let mut thawed = PActionCache::from_snapshot(&back);
        assert_eq!(thawed.register_config(b"config-A"), ConfigLookup::Hit(0));
        assert!(matches!(thawed.register_config(b"config-B"), ConfigLookup::Hit(_)));
        assert_eq!(
            thawed.stats().segments_thawed,
            1,
            "the decoded segment revalidates and revives"
        );
    }

    #[test]
    fn rejects_wrong_magic_version_and_fingerprint() {
        let snap = sample_snapshot(false);
        let bytes = encode_snapshot(&snap, 42);

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            decode_snapshot(&bad, None).expect_err("bad magic"),
            SnapshotDecodeError::BadMagic
        );

        let mut bad = bytes.clone();
        bad[8] = 9;
        assert_eq!(
            decode_snapshot(&bad, None).expect_err("bad version"),
            SnapshotDecodeError::UnsupportedVersion { found: 9 }
        );

        assert_eq!(
            decode_snapshot(&bytes, Some(43)).expect_err("wrong fingerprint"),
            SnapshotDecodeError::FingerprintMismatch { expected: 43, found: 42 }
        );
    }

    #[test]
    fn rejects_every_truncation() {
        let snap = sample_snapshot(true);
        let bytes = encode_snapshot(&snap, 7);
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut], None)
                .expect_err("every prefix must be rejected");
            assert!(
                matches!(
                    err,
                    SnapshotDecodeError::Truncated { .. }
                        | SnapshotDecodeError::BadMagic
                        | SnapshotDecodeError::ChecksumMismatch { .. }
                        | SnapshotDecodeError::Corrupt { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn rejects_payload_bit_flips() {
        let snap = sample_snapshot(true);
        let bytes = encode_snapshot(&snap, 7);
        // Flip one bit in every byte past the header: each must be caught
        // by a checksum (or a stricter header/frame check).
        for pos in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                decode_snapshot(&bad, Some(7)).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_section_length_lies() {
        let snap = sample_snapshot(false);
        let bytes = encode_snapshot(&snap, 7);
        // The first section's length field sits right after its tag.
        let len_at = HEADER_LEN + 4;
        for lie in [0u64, 1, 1 << 20, u64::MAX] {
            let mut bad = bytes.clone();
            bad[len_at..len_at + 8].copy_from_slice(&lie.to_le_bytes());
            assert!(
                decode_snapshot(&bad, None).is_err(),
                "length lie {lie} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let snap = sample_snapshot(false);
        let mut bytes = encode_snapshot(&snap, 7);
        bytes.extend_from_slice(b"junk");
        assert_eq!(
            decode_snapshot(&bytes, None).expect_err("trailing bytes"),
            SnapshotDecodeError::TrailingBytes { extra: 4 }
        );
    }

    #[test]
    fn error_messages_name_the_problem() {
        let msgs = [
            SnapshotDecodeError::BadMagic.to_string(),
            SnapshotDecodeError::UnsupportedVersion { found: 3 }.to_string(),
            SnapshotDecodeError::FingerprintMismatch { expected: 1, found: 2 }.to_string(),
            SnapshotDecodeError::Truncated { section: "nodes", needed: 8, available: 3 }
                .to_string(),
            SnapshotDecodeError::ChecksumMismatch { section: "index" }.to_string(),
            SnapshotDecodeError::TrailingBytes { extra: 9 }.to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[3].contains("nodes"));
        assert!(msgs[4].contains("index"));
    }
}
