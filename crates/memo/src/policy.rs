//! P-action cache replacement policies (paper §4.3).

/// How the p-action cache limits its memory consumption.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[derive(Default)]
pub enum Policy {
    /// No limit: the cache grows as large as the workload demands (the
    /// paper reports up to 889 MB for `go`).
    #[default]
    Unbounded,
    /// Discard the entire cache when it exceeds `limit` bytes — the
    /// paper's recommended policy ("easy to implement and can limit the
    /// p-action cache to any size").
    FlushOnFull {
        /// Modeled size limit in bytes.
        limit: usize,
    },
    /// Copying garbage collector: when over `limit`, copy only the
    /// configurations and actions accessed since the last collection and
    /// discard the rest.
    CopyingGc {
        /// Modeled size limit in bytes.
        limit: usize,
    },
    /// Generational collector: minor collections keep recently accessed
    /// nursery actions; a major collection runs when survivors alone
    /// exceed the limit.
    GenerationalGc {
        /// Modeled size limit in bytes.
        limit: usize,
    },
}

impl Policy {
    /// The byte limit, if this policy has one.
    pub fn limit(&self) -> Option<usize> {
        match self {
            Policy::Unbounded => None,
            Policy::FlushOnFull { limit }
            | Policy::CopyingGc { limit }
            | Policy::GenerationalGc { limit } => Some(*limit),
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits() {
        assert_eq!(Policy::Unbounded.limit(), None);
        assert_eq!(Policy::FlushOnFull { limit: 64 }.limit(), Some(64));
        assert_eq!(Policy::CopyingGc { limit: 64 }.limit(), Some(64));
        assert_eq!(Policy::GenerationalGc { limit: 64 }.limit(), Some(64));
    }
}
