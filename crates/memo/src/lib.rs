//! # fastsim-memo
//!
//! The **p-action cache** — FastSim's memoization structure (paper §4.2).
//!
//! The cache maps µ-architecture *configurations* (compressed iQ
//! snapshots, opaque byte strings produced by `fastsim-uarch`) to chains of
//! *actions*: the ways the detailed simulator interacted with direct
//! execution and the cache simulator, plus counter updates. Chains form a
//! graph: actions whose result depends on the environment (a cache-access
//! interval, a control-flow outcome) have one successor link per observed
//! outcome, grown lazily — an unseen outcome terminates fast-forwarding and
//! detailed simulation resumes, recording a new branch of the chain
//! (paper Figure 6).
//!
//! The cache supports the replacement policies evaluated in §4.3/§5:
//! unbounded growth, **flush-on-full** (the paper's recommendation), a
//! **copying garbage collector** that keeps only actions accessed since the
//! last collection, and a **generational** variant. The paper's finding —
//! that GC is not worth its complexity over simple flushing — is reproduced
//! by the `gc_study` benchmark.
//!
//! This crate is a pure data structure: it never calls the simulators.
//! The engine (`fastsim-core`) records actions while running the detailed
//! simulator and navigates the graph while fast-forwarding.

#![deny(missing_docs)]

mod action;
mod cache;
mod index;
mod policy;
mod snapshot;
mod trace;
mod wire;

pub use action::{ActionKind, NodeId, OutcomeKey, RetireCounts};
pub use cache::{ConfigLookup, MemoStats, PActionCache};
pub use policy::Policy;
pub use snapshot::{CacheSnapshot, MergeOutcome};
pub use trace::{
    EdgeRange, Touched, TouchedKind, TraceOp, TraceSegment, DEFAULT_HOTNESS_THRESHOLD,
};
pub use wire::{
    decode_snapshot, encode_snapshot, snapshots_wire_equal, SnapshotDecodeError, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
