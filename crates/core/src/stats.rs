//! Whole-simulation statistics.

/// Counters accumulated by a [`Simulator`](crate::Simulator) run.
///
/// In FastSim mode, `detailed_*` and `replayed_*` split the work between
/// the detailed µ-architecture simulator and fast-forwarding (paper
/// Table 4); the totals are identical between FastSim and SlowSim runs of
/// the same program.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired_insts: u64,
    /// Loads retired.
    pub retired_loads: u64,
    /// Stores retired.
    pub retired_stores: u64,
    /// Conditional branches retired.
    pub retired_branches: u64,
    /// Instructions retired while running the detailed simulator.
    pub detailed_insts: u64,
    /// Instructions retired while fast-forwarding.
    pub replayed_insts: u64,
    /// Cycles simulated by the detailed simulator.
    pub detailed_cycles: u64,
    /// Cycles covered by replayed `Advance` actions.
    pub replayed_cycles: u64,
    /// Dynamic configuration visits (detailed registrations + replay
    /// crossings).
    pub config_visits: u64,
    /// Actions executed (recorded live + replayed).
    pub dynamic_actions: u64,
    /// Of those, actions replayed from the p-action cache.
    pub replayed_actions: u64,
    /// Completed fast-forward episodes (chains of replayed actions).
    pub chains: u64,
    /// Total length of completed chains.
    pub chain_len_sum: u64,
    /// Longest chain replayed without returning to detailed simulation.
    pub chain_len_max: u64,
}

impl SimStats {
    /// Fraction of retired instructions simulated in detail (Table 4's
    /// final column).
    pub fn detailed_fraction(&self) -> f64 {
        if self.retired_insts == 0 {
            0.0
        } else {
            self.detailed_insts as f64 / self.retired_insts as f64
        }
    }

    /// Average dynamic actions per configuration visit (Table 5).
    pub fn actions_per_config(&self) -> f64 {
        if self.config_visits == 0 {
            0.0
        } else {
            self.dynamic_actions as f64 / self.config_visits as f64
        }
    }

    /// Average simulated cycles per configuration visit (Table 5).
    pub fn cycles_per_config(&self) -> f64 {
        if self.config_visits == 0 {
            0.0
        } else {
            self.cycles as f64 / self.config_visits as f64
        }
    }

    /// Average replayed-chain length (Table 5's "Dyn. Chain Length").
    pub fn avg_chain_len(&self) -> f64 {
        if self.chains == 0 {
            0.0
        } else {
            self.chain_len_sum as f64 / self.chains as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_insts as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = SimStats {
            cycles: 100,
            retired_insts: 200,
            detailed_insts: 2,
            replayed_insts: 198,
            config_visits: 50,
            dynamic_actions: 175,
            chains: 4,
            chain_len_sum: 160,
            chain_len_max: 80,
            ..SimStats::default()
        };
        assert_eq!(s.detailed_fraction(), 0.01);
        assert_eq!(s.actions_per_config(), 3.5);
        assert_eq!(s.cycles_per_config(), 2.0);
        assert_eq!(s.avg_chain_len(), 40.0);
        assert_eq!(s.ipc(), 2.0);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = SimStats::default();
        assert_eq!(s.detailed_fraction(), 0.0);
        assert_eq!(s.actions_per_config(), 0.0);
        assert_eq!(s.cycles_per_config(), 0.0);
        assert_eq!(s.avg_chain_len(), 0.0);
        assert_eq!(s.ipc(), 0.0);
    }
}
