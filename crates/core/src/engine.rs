//! The simulation engine: detailed recording, fast-forward replay, and the
//! fallback path between them.

use crate::error::{BuildError, SimError};
use crate::stats::SimStats;
use fastsim_emu::{BranchPredictor, CtrlKind, RunOutcome, SpecEmulator, SpecError};
use fastsim_isa::{DecodedProgram, Program};
use fastsim_mem::{CacheConfig, CacheSim, CacheStats, HierarchyConfig, LevelStats, PollResult};
use fastsim_memo::{
    ActionKind, CacheSnapshot, ConfigLookup, MemoStats, NodeId, OutcomeKey, PActionCache, Policy,
    RetireCounts, TouchedKind, TraceOp, TraceSegment,
};
use fastsim_uarch::{
    decode_config, encode_config_into, CycleSummary, LoadPoll, Pipeline, PipelineEnv,
    PipelineState,
    RecordFeed, RecordInfo, UArchConfig,
};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// Simulation mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// FastSim: memoized fast-forwarding with the given p-action cache
    /// replacement policy.
    Fast {
        /// Replacement policy for the p-action cache.
        policy: Policy,
    },
    /// SlowSim: memoization disabled (the paper's speedup baseline).
    Slow,
}

impl Mode {
    /// FastSim with an unbounded p-action cache.
    pub fn fast() -> Mode {
        Mode::Fast { policy: Policy::Unbounded }
    }
}

/// Progress report from [`Simulator::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Progress {
    /// The program halted (simulation complete).
    pub finished: bool,
    /// Instructions retired so far (total).
    pub retired_insts: u64,
    /// Simulated cycles so far (total).
    pub cycles: u64,
}

/// How many cycles the pipeline may go without retiring anything before
/// the engine declares it wedged.
const STUCK_CYCLES: u64 = 1_000_000;

/// A populated p-action cache extracted from a finished [`Simulator`],
/// reusable to *warm-start* another simulation of the same program under
/// the same processor model ([`Simulator::take_warm_cache`] /
/// [`Simulator::with_warm_cache`]).
///
/// Memoized actions are only meaningful for the exact program image and
/// µ-architecture parameters they were recorded under, so the cache
/// carries a fingerprint that [`Simulator::with_warm_cache`] verifies.
/// (The *data-cache* configuration may differ: cache intervals re-enter
/// replay as checked outcomes, so stale intervals merely fall back to
/// detailed simulation — but the fingerprint includes it anyway, since a
/// mismatch would defeat the purpose of warming.)
#[derive(Clone, Debug)]
pub struct WarmCache {
    pcache: PActionCache,
    fingerprint: u64,
}

impl WarmCache {
    /// Memoization statistics of the warmed cache.
    pub fn stats(&self) -> &MemoStats {
        self.pcache.stats()
    }

    /// The fingerprint of the (program, µ-architecture, cache hierarchy)
    /// triple the cache was recorded under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Freezes the warm cache into an immutable, shareable
    /// [`WarmCacheSnapshot`].
    pub fn freeze(&self) -> WarmCacheSnapshot {
        WarmCacheSnapshot {
            snapshot: Arc::new(self.pcache.freeze()),
            fingerprint: self.fingerprint,
        }
    }

    pub(crate) fn into_pcache(self) -> PActionCache {
        self.pcache
    }
}

/// A frozen, read-only [`WarmCache`]: an [`Arc`]-shared
/// [`CacheSnapshot`] plus the fingerprint of the run it came from.
///
/// Unlike a [`WarmCache`] — which is consumed by
/// [`Simulator::with_warm_cache`] — a snapshot can seed any number of
/// simulators, concurrently and repeatedly
/// ([`Simulator::with_warm_snapshot`]): each simulator thaws a private
/// working copy and records its own delta, and the snapshot itself is
/// never mutated. Cloning a snapshot is cheap (it clones the `Arc`).
///
/// This is the sharing primitive behind the batch driver
/// ([`crate::batch`]).
#[derive(Clone, Debug)]
pub struct WarmCacheSnapshot {
    snapshot: Arc<CacheSnapshot>,
    fingerprint: u64,
}

impl WarmCacheSnapshot {
    pub(crate) fn from_parts(snapshot: Arc<CacheSnapshot>, fingerprint: u64) -> WarmCacheSnapshot {
        WarmCacheSnapshot { snapshot, fingerprint }
    }

    /// Memoization statistics at freeze time.
    pub fn stats(&self) -> &MemoStats {
        self.snapshot.stats()
    }

    /// The fingerprint of the (program, µ-architecture, cache hierarchy)
    /// triple the snapshot was recorded under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of configurations in the frozen cache.
    pub fn config_count(&self) -> usize {
        self.snapshot.config_count()
    }

    /// Number of action nodes in the frozen cache.
    pub fn node_count(&self) -> usize {
        self.snapshot.node_count()
    }

    /// The underlying frozen p-action cache (for merging deltas with
    /// [`PActionCache::merge_from`]).
    pub fn cache(&self) -> &CacheSnapshot {
        &self.snapshot
    }

    /// Encodes the snapshot — fingerprint and all, compiled trace segments
    /// and hotness included — into the durable `fastsim-snapshot/v1` byte
    /// format ([`fastsim_memo::encode_snapshot`]).
    pub fn encode(&self) -> Vec<u8> {
        fastsim_memo::encode_snapshot(&self.snapshot, self.fingerprint)
    }

    /// Decodes a `fastsim-snapshot/v1` byte stream back into a shareable
    /// snapshot.
    ///
    /// With `expected_fingerprint`, a snapshot recorded under any other
    /// (program, µ-architecture, hierarchy) triple is rejected with
    /// [`SnapshotDecodeError::FingerprintMismatch`](fastsim_memo::SnapshotDecodeError) —
    /// a warm cache must never cross models.
    ///
    /// # Errors
    ///
    /// Any damage — wrong magic or version, truncation, checksum or bounds
    /// failure — yields a typed [`fastsim_memo::SnapshotDecodeError`]; a
    /// bad file is never partially applied.
    pub fn decode(
        bytes: &[u8],
        expected_fingerprint: Option<u64>,
    ) -> Result<WarmCacheSnapshot, fastsim_memo::SnapshotDecodeError> {
        let (snapshot, fingerprint) =
            fastsim_memo::decode_snapshot(bytes, expected_fingerprint)?;
        Ok(WarmCacheSnapshot { snapshot: Arc::new(snapshot), fingerprint })
    }
}

/// FNV-1a fingerprint of everything the recorded actions depend on.
///
/// Hashes the full hierarchy — level count and every per-level parameter —
/// so warm caches recorded under different hierarchies can never be
/// confused, whatever their depth.
pub(crate) fn fingerprint(program: &Program, uarch: &UArchConfig, cache: &HierarchyConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(program.base as u64);
    eat(program.entry as u64);
    for &w in &program.words {
        eat(w as u64);
    }
    for (addr, bytes) in &program.data {
        eat(*addr as u64);
        for &b in bytes {
            eat(b as u64);
        }
    }
    for v in [
        uarch.fetch_width,
        uarch.decode_width,
        uarch.retire_width,
        uarch.iq_capacity as u32,
        uarch.int_queue as u32,
        uarch.fp_queue as u32,
        uarch.addr_queue as u32,
        uarch.int_alus,
        uarch.fp_units,
        uarch.agen_units,
        uarch.cache_ports,
        uarch.phys_int_regs,
        uarch.phys_fp_regs,
        uarch.max_branches,
        uarch.lat_int_mul,
        uarch.lat_int_div,
        uarch.lat_fp_add,
        uarch.lat_fp_mul,
        uarch.lat_fp_div,
        uarch.lat_fp_sqrt,
    ] {
        eat(v as u64);
    }
    eat(cache.levels.len() as u64);
    for lvl in &cache.levels {
        for v in [lvl.bytes, lvl.assoc, lvl.line, lvl.hit_latency, lvl.miss_latency, lvl.mshrs] {
            eat(v as u64);
        }
        eat(match lvl.write_policy {
            fastsim_mem::WritePolicy::WriteThrough => 0,
            fastsim_mem::WritePolicy::WriteBack => 1,
        });
    }
    for v in [cache.memory_latency, cache.bus_bytes] {
        eat(v as u64);
    }
    eat(match uarch.issue_model {
        fastsim_uarch::IssueModel::OutOfOrder => 0,
        fastsim_uarch::IssueModel::InOrder => 1,
    });
    h
}

/// A buffered environment response, kept from the moment fast-forwarding
/// crosses a configuration so that, on an unseen outcome, the detailed
/// simulator can re-run the configuration's cycles *without repeating side
/// effects*.
#[derive(Clone, Copy, Debug)]
enum Buffered {
    Feed(RecordFeed),
    Interval(u32),
    Poll(LoadPoll),
    Store,
    Cancel,
    Rollback(u32),
}

/// Fallback/resume bookkeeping.
#[derive(Debug, Default)]
struct Resume {
    /// Cycles of the anchor configuration's group already accounted by
    /// replay; the detailed re-run suppresses counters for this many
    /// cycles.
    cycles: u32,
    /// Retires already applied by replay (suppressed during re-run;
    /// drained for verification).
    pops: RetireCounts,
    /// Environment responses observed since the anchor configuration.
    responses: VecDeque<Buffered>,
}

/// State shared between the engine loop and the pipeline's environment.
struct Shared {
    emu: SpecEmulator,
    cache: CacheSim,
    pcache: Option<PActionCache>,
    stats: SimStats,
    /// cQ position of the next record a `FetchRecord` will consume. The
    /// engine keeps direct execution *ahead* of µ-architecture fetch
    /// (paper §3.1: the simulator "advances ... up to the fetch of the
    /// current branch", i.e. the program runs first): after every record
    /// consumption or rollback it eagerly runs the emulator one more
    /// stretch, so every instruction the pipeline fetches has already
    /// executed functionally and its lQ/sQ records exist.
    next_fetch_record: usize,
    /// Cycles/retires since the last recorded action group boundary.
    pending_cycles: u32,
    pending_retired: RetireCounts,
    /// The current cycle's `Advance` action has been recorded (or is
    /// covered by an existing one during resume).
    advance_flushed: bool,
    /// Any environment interaction occurred this cycle.
    interacted: bool,
    /// The current cycle is a suppressed resume cycle.
    in_resume_cycle: bool,
    resume: Resume,
    fatal: Option<SimError>,
}

impl Shared {
    fn recording_live(&self) -> bool {
        self.pcache.is_some() && self.resume.responses.is_empty()
    }

    fn pop_buffered(&mut self) -> Option<Buffered> {
        self.resume.responses.pop_front()
    }

    fn maybe_flush_advance(&mut self) {
        if self.advance_flushed {
            return;
        }
        self.advance_flushed = true;
        if let Some(pc) = &mut self.pcache {
            pc.record_action(ActionKind::Advance {
                cycles: self.pending_cycles,
                retired: self.pending_retired,
            });
            self.stats.dynamic_actions += 1;
        }
        self.pending_cycles = 0;
        self.pending_retired = RetireCounts::default();
    }

    fn record_simple(&mut self, kind: ActionKind) {
        if !self.recording_live() {
            return;
        }
        self.maybe_flush_advance();
        if let Some(pc) = &mut self.pcache {
            pc.record_action(kind);
            self.stats.dynamic_actions += 1;
        }
    }

    fn record_with_outcome(&mut self, kind: ActionKind, key: OutcomeKey) {
        if !self.recording_live() {
            return;
        }
        self.maybe_flush_advance();
        if let Some(pc) = &mut self.pcache {
            let id = pc.record_action(kind);
            pc.set_outcome(id, key);
            self.stats.dynamic_actions += 1;
        }
    }

    /// Applies the queue pops and counter updates of retirement.
    fn apply_retire(&mut self, r: RetireCounts, replayed: bool) {
        for _ in 0..r.loads {
            self.emu.pop_load().expect("retired load has an lQ entry");
        }
        for _ in 0..r.stores {
            self.emu.pop_store().expect("retired store has an sQ entry");
        }
        for _ in 0..r.ctrls {
            self.emu.pop_ctrl().expect("retired control has a cQ entry");
        }
        self.next_fetch_record -= r.ctrls as usize;
        self.stats.retired_insts += r.insts as u64;
        self.stats.retired_loads += r.loads as u64;
        self.stats.retired_stores += r.stores as u64;
        self.stats.retired_branches += r.branches as u64;
        if replayed {
            self.stats.replayed_insts += r.insts as u64;
        } else {
            self.stats.detailed_insts += r.insts as u64;
        }
    }

    /// Runs direct execution until the cQ holds at least one record beyond
    /// [`Shared::next_fetch_record`] (or the current path halts/blocks).
    /// This is what keeps the program execution ahead of the pipeline.
    fn ensure_record_ahead(&mut self) {
        while self.emu.cq_len() <= self.next_fetch_record {
            match self.emu.run_to_next_control() {
                Ok(RunOutcome::Control(_)) => {}
                Ok(RunOutcome::Halted) => break,
                Ok(RunOutcome::Blocked) => {
                    if self.emu.speculation_depth() == 0 {
                        self.fatal = Some(SimError::WildPath);
                    }
                    break;
                }
                Err(SpecError::Diverged { pc }) => {
                    self.fatal = Some(SimError::Diverged { pc });
                    break;
                }
            }
        }
    }

    /// Consumes the next control record for the pipeline (the semantics of
    /// a `FetchRecord` action, shared by detailed recording and replay):
    /// serves the eagerly produced record and runs direct execution one
    /// stretch further.
    fn consume_record_feed(&mut self) -> RecordFeed {
        let feed = match self.emu.cq_get(self.next_fetch_record) {
            Some(rec) => RecordFeed::Record(RecordInfo {
                pc: rec.pc,
                is_indirect: rec.kind == CtrlKind::IndirectJump,
                taken: rec.taken,
                mispredicted: rec.mispredicted,
                target: rec.target,
                next_fetch: rec.next_fetch,
            }),
            // The eager run could not reach another control transfer.
            // Consistent engines never ask in this state (fetch stalls at
            // the halt instruction or the unfetchable address instead).
            None if self.emu.finally_halted() => RecordFeed::Halted,
            None => RecordFeed::Blocked,
        };
        if matches!(feed, RecordFeed::Record(_)) {
            self.next_fetch_record += 1;
            self.ensure_record_ahead();
        }
        feed
    }

    fn do_issue_load(&mut self, lq_index: usize) -> u32 {
        let rec = *self.emu.lq_get(lq_index).expect("issued load has an lQ entry");
        self.cache.issue_load(rec.seq, rec.addr, rec.width, self.stats.cycles)
    }

    fn do_poll_load(&mut self, lq_index: usize) -> LoadPoll {
        let rec = *self.emu.lq_get(lq_index).expect("polled load has an lQ entry");
        match self.cache.poll_load(rec.seq, self.stats.cycles) {
            PollResult::Ready => LoadPoll::Ready,
            PollResult::Wait(w) => LoadPoll::Wait(w),
        }
    }

    fn do_issue_store(&mut self, sq_index: usize) {
        let rec = *self.emu.sq_get(sq_index).expect("issued store has an sQ entry");
        self.cache.issue_store(rec.addr, rec.width, self.stats.cycles);
    }

    fn do_cancel_load(&mut self, lq_index: usize) {
        let rec = *self.emu.lq_get(lq_index).expect("cancelled load has an lQ entry");
        self.cache.cancel_load(rec.seq);
    }

    fn do_rollback(&mut self, ctrl_index: usize) -> u32 {
        let seq = self.emu.cq_get(ctrl_index).expect("rollback target has a cQ entry").seq;
        let redirect = self.emu.rollback(seq);
        // Wrong-path records (and the eagerly produced one, if any) are
        // gone; all remaining records are in flight. Run the corrected
        // path's next stretch so fetch finds executed instructions.
        self.next_fetch_record = self.emu.cq_len();
        self.ensure_record_ahead();
        redirect
    }
}

fn outcome_of_feed(feed: &RecordFeed) -> OutcomeKey {
    match feed {
        RecordFeed::Record(r) if r.is_indirect => {
            OutcomeKey::Indirect { target: r.target, mispredicted: r.mispredicted }
        }
        RecordFeed::Record(r) => {
            OutcomeKey::Branch { taken: r.taken, mispredicted: r.mispredicted }
        }
        RecordFeed::Halted => OutcomeKey::Halted,
        RecordFeed::Blocked => OutcomeKey::Blocked,
    }
}

impl PipelineEnv for Shared {
    fn on_retire(&mut self, s: CycleSummary) {
        let counts = RetireCounts {
            insts: s.retired_insts,
            loads: s.retired_loads,
            stores: s.retired_stores,
            ctrls: s.retired_ctrls,
            branches: s.retired_branches,
        };
        if self.in_resume_cycle {
            // Already applied when the Advance action was replayed; just
            // verify the re-run retires what the recording did.
            debug_assert!(
                self.resume.pops.insts >= counts.insts,
                "resume retire desync"
            );
            self.resume.pops.insts -= counts.insts;
            return;
        }
        self.apply_retire(counts, false);
        self.pending_retired.add(counts);
    }

    fn fetch_record(&mut self, ctrl_index: usize) -> RecordFeed {
        self.interacted = true;
        if let Some(b) = self.pop_buffered() {
            return match b {
                Buffered::Feed(f) => f,
                other => unreachable!("resume desync: expected record feed, got {other:?}"),
            };
        }
        debug_assert_eq!(ctrl_index, self.next_fetch_record, "record request out of order");
        let feed = self.consume_record_feed();
        self.record_with_outcome(ActionKind::FetchRecord, outcome_of_feed(&feed));
        feed
    }

    fn issue_load(&mut self, lq_index: usize) -> u32 {
        self.interacted = true;
        if let Some(b) = self.pop_buffered() {
            return match b {
                Buffered::Interval(v) => v,
                other => unreachable!("resume desync: expected interval, got {other:?}"),
            };
        }
        let interval = self.do_issue_load(lq_index);
        self.record_with_outcome(
            ActionKind::IssueLoad { lq_index: lq_index as u32 },
            OutcomeKey::Interval(interval),
        );
        interval
    }

    fn poll_load(&mut self, lq_index: usize) -> LoadPoll {
        self.interacted = true;
        if let Some(b) = self.pop_buffered() {
            return match b {
                Buffered::Poll(p) => p,
                other => unreachable!("resume desync: expected poll, got {other:?}"),
            };
        }
        let poll = self.do_poll_load(lq_index);
        let key = match poll {
            LoadPoll::Ready => OutcomeKey::PollReady,
            LoadPoll::Wait(w) => OutcomeKey::PollWait(w),
        };
        self.record_with_outcome(ActionKind::PollLoad { lq_index: lq_index as u32 }, key);
        poll
    }

    fn issue_store(&mut self, sq_index: usize) {
        self.interacted = true;
        if let Some(b) = self.pop_buffered() {
            match b {
                Buffered::Store => return,
                other => unreachable!("resume desync: expected store, got {other:?}"),
            }
        }
        self.do_issue_store(sq_index);
        self.record_simple(ActionKind::IssueStore { sq_index: sq_index as u32 });
    }

    fn cancel_load(&mut self, lq_index: usize) {
        self.interacted = true;
        if let Some(b) = self.pop_buffered() {
            match b {
                Buffered::Cancel => return,
                other => unreachable!("resume desync: expected cancel, got {other:?}"),
            }
        }
        self.do_cancel_load(lq_index);
        self.record_simple(ActionKind::CancelLoad { lq_index: lq_index as u32 });
    }

    fn rollback(&mut self, ctrl_index: usize) -> u32 {
        self.interacted = true;
        if let Some(b) = self.pop_buffered() {
            return match b {
                Buffered::Rollback(r) => r,
                other => unreachable!("resume desync: expected rollback, got {other:?}"),
            };
        }
        let redirect = self.do_rollback(ctrl_index);
        self.record_simple(ActionKind::Rollback { ctrl_index: ctrl_index as u32 });
        redirect
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EngineMode {
    Detailed,
    Replay { cursor: NodeId },
    Finished,
}

/// Why trace-segment execution returned to the replay loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SegExit {
    /// Segment over (chain cut or a carried cold edge): continue
    /// node-at-a-time replay at this not-yet-executed node.
    Continue(NodeId),
    /// A dispatch observed an outcome the segment does not carry: resolve
    /// `key` against `node`'s live edges (replay a branch recorded after
    /// compilation, or fall back to detailed simulation).
    Branch { node: NodeId, key: OutcomeKey },
    /// The segment replayed a `Finish`: the program is complete.
    Finished,
    /// The instruction budget was reached; resume replay at this node.
    Budget(NodeId),
}

/// How a segment dispatch op resolved an observed outcome against its
/// compiled edges.
enum Dispatch {
    /// The hot (first compiled) edge: execution continues inline.
    Hot,
    /// Another compiled edge: exit the segment to its target.
    Cold(NodeId),
    /// Not compiled into the segment: consult the live node.
    Uncarried,
}

#[inline]
fn dispatch(edges: &[(OutcomeKey, NodeId)], key: OutcomeKey) -> Dispatch {
    if edges[0].0 == key {
        return Dispatch::Hot;
    }
    match edges[1..].iter().find(|(k, _)| *k == key) {
        Some(&(_, n)) => Dispatch::Cold(n),
        None => Dispatch::Uncarried,
    }
}

/// The complete FastSim simulator (Figure 2): speculative
/// direct-execution, µ-architecture simulation, non-blocking cache
/// simulation and (in [`Mode::Fast`]) memoized fast-forwarding.
///
/// # Example
///
/// ```
/// use fastsim_isa::{Asm, Reg};
/// use fastsim_core::{Mode, Simulator};
///
/// let mut a = Asm::new();
/// a.addi(Reg::R1, Reg::R0, 100);
/// a.label("loop");
/// a.subi(Reg::R1, Reg::R1, 1);
/// a.bne(Reg::R1, Reg::R0, "loop");
/// a.out(Reg::R1);
/// a.halt();
/// let image = a.assemble()?;
///
/// let mut fast = Simulator::new(&image, Mode::fast())?;
/// let mut slow = Simulator::new(&image, Mode::Slow)?;
/// fast.run_to_completion()?;
/// slow.run_to_completion()?;
/// // Memoization changes nothing about the simulation results.
/// assert_eq!(fast.stats().cycles, slow.stats().cycles);
/// assert_eq!(fast.output(), slow.output());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulator {
    prog: Rc<DecodedProgram>,
    pipeline: Pipeline,
    shared: Shared,
    mode: EngineMode,
    /// Encoded bytes of the last configuration crossed (fallback anchor).
    anchor: Vec<u8>,
    /// Reusable scratch buffer for per-cycle configuration encoding: the
    /// hot path never allocates once this reaches steady-state capacity.
    scratch: Vec<u8>,
    /// Length of the current fast-forward chain.
    chain_len: u64,
    /// Last cycle at which an instruction retired (wedge detection).
    last_progress: u64,
    /// Fingerprint of (program, configs) for warm-cache reuse.
    fingerprint_of_run: u64,
    /// Per-cycle observer for pipeline tracing (detailed cycles only).
    observer: Option<CycleObserver>,
}

/// Callback invoked after every *detailed* simulated cycle with the cycle
/// number, the pipeline state and the cycle's retirement summary. See
/// [`Simulator::set_cycle_observer`].
pub type CycleObserver = Box<dyn FnMut(u64, &PipelineState, &CycleSummary)>;

impl Simulator {
    /// Creates a simulator with the paper's Table 1 parameters.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the program does not decode.
    pub fn new(program: &Program, mode: Mode) -> Result<Simulator, BuildError> {
        Simulator::with_configs(program, mode, UArchConfig::table1(), CacheConfig::table1())
    }

    /// Creates a simulator with explicit µ-architecture and cache
    /// parameters. The cache accepts either the flat two-level
    /// [`CacheConfig`] or a full N-level [`HierarchyConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the program does not decode or a
    /// configuration is invalid.
    pub fn with_configs(
        program: &Program,
        mode: Mode,
        uarch: UArchConfig,
        cache: impl Into<HierarchyConfig>,
    ) -> Result<Simulator, BuildError> {
        Simulator::with_predictor(program, mode, uarch, cache, BranchPredictor::new())
    }

    /// Creates a simulator with an explicitly sized branch predictor (for
    /// ablation studies; see
    /// [`BranchPredictor::with_entries`](fastsim_emu::BranchPredictor::with_entries)).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the program does not decode or a
    /// configuration is invalid.
    pub fn with_predictor(
        program: &Program,
        mode: Mode,
        uarch: UArchConfig,
        cache: impl Into<HierarchyConfig>,
        predictor: BranchPredictor,
    ) -> Result<Simulator, BuildError> {
        let cache: HierarchyConfig = cache.into();
        uarch.validate().map_err(BuildError::UArchConfig)?;
        cache.validate().map_err(BuildError::CacheConfig)?;
        let prog = Rc::new(program.predecode()?);
        let pcache = match mode {
            Mode::Fast { policy } => Some(PActionCache::new(policy)),
            Mode::Slow => None,
        };
        let fingerprint_of_run = fingerprint(program, &uarch, &cache);
        let mut sim = Simulator {
            pipeline: Pipeline::new(uarch, prog.clone()),
            shared: Shared {
                emu: SpecEmulator::with_predictor(prog.clone(), program, predictor),
                cache: CacheSim::new(cache),
                pcache,
                stats: SimStats::default(),
                next_fetch_record: 0,
                pending_cycles: 0,
                pending_retired: RetireCounts::default(),
                advance_flushed: false,
                interacted: false,
                in_resume_cycle: false,
                resume: Resume::default(),
                fatal: None,
            },
            prog,
            mode: EngineMode::Detailed,
            anchor: Vec::new(),
            scratch: Vec::new(),
            chain_len: 0,
            last_progress: 0,
            fingerprint_of_run,
            observer: None,
        };
        // Direct execution leads: run the first stretch so the pipeline's
        // initial fetches find functionally executed instructions.
        sim.shared.ensure_record_ahead();
        Ok(sim)
    }

    /// Creates a FastSim simulator pre-populated with the memoization
    /// state of a previous run of the same program — the second run
    /// fast-forwards almost from the first cycle.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the program does not decode or if `warm`
    /// was recorded for a different program or processor model.
    pub fn with_warm_cache(
        program: &Program,
        warm: WarmCache,
        uarch: UArchConfig,
        cache: impl Into<HierarchyConfig>,
    ) -> Result<Simulator, BuildError> {
        let cache: HierarchyConfig = cache.into();
        if warm.fingerprint != fingerprint(program, &uarch, &cache) {
            return Err(BuildError::WarmCacheMismatch);
        }
        let policy = warm.pcache.policy();
        let mut sim =
            Simulator::with_configs(program, Mode::Fast { policy }, uarch, cache)?;
        sim.shared.pcache = Some(warm.pcache);
        Ok(sim)
    }

    /// Creates a FastSim simulator that replays from a frozen, shared
    /// [`WarmCacheSnapshot`], recording its own private delta. The
    /// snapshot is never mutated; any number of simulators (including on
    /// other threads) can be seeded from the same snapshot.
    ///
    /// The simulator adopts the snapshot's replacement policy, and its
    /// memoization statistics continue from the snapshot's (so cumulative
    /// counters behave exactly as under
    /// [`with_warm_cache`](Simulator::with_warm_cache)).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the program does not decode or if the
    /// snapshot was recorded for a different program or processor model.
    pub fn with_warm_snapshot(
        program: &Program,
        warm: &WarmCacheSnapshot,
        uarch: UArchConfig,
        cache: impl Into<HierarchyConfig>,
    ) -> Result<Simulator, BuildError> {
        let cache: HierarchyConfig = cache.into();
        if warm.fingerprint != fingerprint(program, &uarch, &cache) {
            return Err(BuildError::WarmCacheMismatch);
        }
        let policy = warm.snapshot.policy();
        let mut sim =
            Simulator::with_configs(program, Mode::Fast { policy }, uarch, cache)?;
        sim.shared.pcache = Some(PActionCache::from_snapshot(&warm.snapshot));
        Ok(sim)
    }

    /// Extracts the p-action cache of a finished FastSim run for reuse
    /// with [`Simulator::with_warm_cache`]. Returns `None` in
    /// [`Mode::Slow`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation has not [`finished`](Simulator::finished)
    /// — mid-run the cache contains a dangling recording attach point.
    pub fn take_warm_cache(mut self) -> Option<WarmCache> {
        assert!(self.finished(), "warm cache extraction requires a finished run");
        let pcache = self.shared.pcache.take()?;
        Some(WarmCache { pcache, fingerprint: self.fingerprint_of_run })
    }

    /// Installs (or clears) a per-cycle observer for pipeline tracing.
    ///
    /// The observer fires after every cycle simulated by the *detailed*
    /// µ-architecture simulator — in [`Mode::Slow`] that is every cycle of
    /// the program; in [`Mode::Fast`] fast-forwarded stretches are not
    /// observed (there is no pipeline state during replay; that is the
    /// point of memoization). Use [`Mode::Slow`] for complete traces.
    pub fn set_cycle_observer(&mut self, observer: Option<CycleObserver>) {
        self.observer = observer;
    }

    /// Whole-simulation statistics.
    pub fn stats(&self) -> &SimStats {
        &self.shared.stats
    }

    /// Aggregate cache-hierarchy statistics.
    pub fn cache_stats(&self) -> &CacheStats {
        self.shared.cache.stats()
    }

    /// Per-level cache statistics, nearest level first.
    pub fn cache_level_stats(&self) -> &[LevelStats] {
        self.shared.cache.level_stats()
    }

    /// Memoization statistics ([`Mode::Fast`] only).
    pub fn memo_stats(&self) -> Option<&MemoStats> {
        self.shared.pcache.as_ref().map(|p| p.stats())
    }

    /// Sets the p-action cache's trace-compilation hotness threshold: a
    /// configuration's chain is flattened into a linear replay segment
    /// once replay has entered it more than `threshold` times. `0`
    /// compiles every chain on first replay; `u32::MAX` disables trace
    /// compilation entirely, including execution of segments revived
    /// from a warm snapshot. Purely a performance knob — simulation
    /// results and all pre-existing statistics are bit-identical at any
    /// setting. No effect in [`Mode::Slow`].
    pub fn set_trace_hotness(&mut self, threshold: u32) {
        if let Some(pc) = &mut self.shared.pcache {
            pc.set_hotness_threshold(threshold);
        }
    }

    /// Enables or disables superblock segment chaining: with chaining on
    /// (the default), a compiled segment that exits through a carried
    /// cold edge or cut whose target also has a compiled segment jumps
    /// directly segment-to-segment instead of bouncing through
    /// node-at-a-time replay. Purely a performance knob — simulation
    /// results and all architectural statistics are bit-identical with
    /// chaining on or off. No effect in [`Mode::Slow`].
    pub fn set_trace_chaining(&mut self, enabled: bool) {
        if let Some(pc) = &mut self.shared.pcache {
            pc.set_chaining(enabled);
        }
    }

    /// Branch-predictor statistics.
    pub fn predictor(&self) -> &fastsim_emu::BranchPredictor {
        self.shared.emu.predictor()
    }

    /// Functional-engine statistics (wrong-path instructions, rollbacks).
    pub fn emu_stats(&self) -> fastsim_emu::SpecStats {
        self.shared.emu.stats()
    }

    /// Values the program wrote with `out` (committed path only).
    pub fn output(&self) -> &[u32] {
        self.shared.emu.output()
    }

    /// Whether the program has halted.
    pub fn finished(&self) -> bool {
        self.mode == EngineMode::Finished
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for diverging or wild programs.
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        self.run(u64::MAX).map(|_| ())
    }

    /// Runs until the program halts or (roughly) `max_insts` further
    /// instructions have retired. Can be called repeatedly to continue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for diverging/wild programs or a wedged
    /// pipeline.
    pub fn run(&mut self, max_insts: u64) -> Result<Progress, SimError> {
        let budget_end = self.shared.stats.retired_insts.saturating_add(max_insts);
        loop {
            let done = match self.mode {
                EngineMode::Finished => true,
                EngineMode::Detailed => self.detailed_until(budget_end)?,
                EngineMode::Replay { cursor } => self.replay_until(cursor, budget_end)?,
            };
            let s = &self.shared.stats;
            if done {
                return Ok(Progress {
                    finished: true,
                    retired_insts: s.retired_insts,
                    cycles: s.cycles,
                });
            }
            if s.retired_insts >= budget_end {
                return Ok(Progress {
                    finished: false,
                    retired_insts: s.retired_insts,
                    cycles: s.cycles,
                });
            }
        }
    }

    /// Runs detailed cycles until the program halts (true), the budget is
    /// reached, or a configuration hit switches to replay (false).
    fn detailed_until(&mut self, budget_end: u64) -> Result<bool, SimError> {
        loop {
            let resuming = self.shared.resume.cycles > 0;
            if resuming {
                self.shared.resume.cycles -= 1;
            } else {
                self.shared.stats.cycles += 1;
                self.shared.stats.detailed_cycles += 1;
                self.shared.pending_cycles += 1;
            }
            self.shared.in_resume_cycle = resuming;
            self.shared.advance_flushed = resuming;
            self.shared.interacted = false;

            let summary = self.pipeline.step_cycle(&mut self.shared);

            if let Some(e) = self.shared.fatal.take() {
                return Err(e);
            }
            if let Some(obs) = &mut self.observer {
                if !resuming {
                    obs(self.shared.stats.cycles, self.pipeline.state(), &summary);
                }
            }
            if summary.retired_insts > 0 {
                self.last_progress = self.shared.stats.cycles;
            } else if self.shared.stats.cycles - self.last_progress > STUCK_CYCLES {
                return Err(SimError::Stuck { cycle: self.shared.stats.cycles });
            }
            if summary.halted {
                debug_assert!(!resuming, "halt cannot be new behaviour in a resume cycle");
                if self.shared.recording_live() {
                    self.shared.maybe_flush_advance();
                    self.shared.record_simple(ActionKind::Finish);
                }
                self.mode = EngineMode::Finished;
                return Ok(true);
            }
            if self.shared.interacted && self.shared.pcache.is_some() {
                encode_config_into(&mut self.scratch, self.pipeline.state(), &self.prog);
                // `pcache` stays Some for the life of a FastSim simulator.
                let lookup = match &mut self.shared.pcache {
                    Some(pc) => pc.register_config(&self.scratch),
                    None => unreachable!("checked just above"),
                };
                match lookup {
                    ConfigLookup::Hit(node) => {
                        self.chain_len = 0;
                        self.mode = EngineMode::Replay { cursor: node };
                        return Ok(false);
                    }
                    ConfigLookup::Miss => {
                        self.shared.stats.config_visits += 1;
                    }
                }
            }
            if self.shared.stats.retired_insts >= budget_end {
                return Ok(false);
            }
        }
    }

    /// Fast-forwards along the action chain from `cursor` until the
    /// program finishes (true), the budget is reached, or an unseen
    /// outcome falls back to detailed simulation (false).
    ///
    /// The p-action cache is moved out of `shared` for the duration of the
    /// call instead of unwrapping the `Option` on every replayed action:
    /// replay never records, and nothing reached through `shared` during
    /// replay touches the cache.
    fn replay_until(&mut self, cursor: NodeId, budget_end: u64) -> Result<bool, SimError> {
        let mut pc = self.shared.pcache.take().expect("replay requires a p-action cache");
        let result = self.replay_loop(&mut pc, cursor, budget_end);
        self.shared.pcache = Some(pc);
        result
    }

    fn replay_loop(
        &mut self,
        pc: &mut PActionCache,
        mut cursor: NodeId,
        budget_end: u64,
    ) -> Result<bool, SimError> {
        loop {
            // Crossing a configuration: trace-compiled fast path, or (for
            // chains not hot yet) a new fallback anchor.
            if pc.is_config_head(cursor) {
                if let Some(seg) = pc.trace_enter(cursor) {
                    match self.run_segment(pc, seg, budget_end)? {
                        SegExit::Continue(n) => {
                            // The segment ended (chain cut or a carried cold
                            // edge): resume node-at-a-time where it left off,
                            // marking the target like a followed link would.
                            pc.note_trace_bailout();
                            pc.mark_accessed(n);
                            cursor = n;
                            continue;
                        }
                        SegExit::Branch { node, key } => {
                            // Outcome not carried by the segment: resolve it
                            // against the node's live edges — recorded-after-
                            // compilation branches replay, truly unseen
                            // outcomes fall back, exactly as node-at-a-time.
                            pc.note_trace_bailout();
                            match pc.branch_to(node, key) {
                                Some(n) => {
                                    cursor = n;
                                    continue;
                                }
                                None => {
                                    return self.fallback(pc, node, Some(key)).map(|()| false)
                                }
                            }
                        }
                        SegExit::Finished => {
                            self.close_chain();
                            self.mode = EngineMode::Finished;
                            return Ok(true);
                        }
                        SegExit::Budget(n) => {
                            pc.mark_accessed(n);
                            self.mode = EngineMode::Replay { cursor: n };
                            return Ok(false);
                        }
                    }
                }
                let cfg = pc.config_at(cursor).expect("config head carries bytes");
                self.anchor.clear();
                self.anchor.extend_from_slice(cfg);
                self.shared.resume.cycles = 0;
                self.shared.resume.pops = RetireCounts::default();
                self.shared.resume.responses.clear();
                self.shared.stats.config_visits += 1;
            }
            let kind = pc.kind(cursor);
            self.shared.stats.dynamic_actions += 1;
            self.shared.stats.replayed_actions += 1;
            self.chain_len += 1;
            match kind {
                ActionKind::Advance { cycles, retired } => {
                    self.shared.stats.cycles += cycles as u64;
                    self.shared.stats.replayed_cycles += cycles as u64;
                    self.shared.apply_retire(retired, true);
                    self.shared.resume.cycles += cycles;
                    self.shared.resume.pops.add(retired);
                    if retired.insts > 0 {
                        self.last_progress = self.shared.stats.cycles;
                    }
                    match pc.advance(cursor) {
                        Some(n) => cursor = n,
                        None => return self.fallback(pc, cursor, None).map(|()| false),
                    }
                    if self.shared.stats.retired_insts >= budget_end {
                        self.mode = EngineMode::Replay { cursor };
                        return Ok(false);
                    }
                }
                ActionKind::FetchRecord => {
                    let feed = self.shared.consume_record_feed();
                    if let Some(e) = self.shared.fatal.take() {
                        return Err(e);
                    }
                    self.shared.resume.responses.push_back(Buffered::Feed(feed));
                    let key = outcome_of_feed(&feed);
                    cursor = match pc.branch_to(cursor, key) {
                        Some(n) => n,
                        None => return self.fallback(pc, cursor, Some(key)).map(|()| false),
                    };
                }
                ActionKind::IssueLoad { lq_index } => {
                    let interval = self.shared.do_issue_load(lq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Interval(interval));
                    let key = OutcomeKey::Interval(interval);
                    cursor = match pc.branch_to(cursor, key) {
                        Some(n) => n,
                        None => return self.fallback(pc, cursor, Some(key)).map(|()| false),
                    };
                }
                ActionKind::PollLoad { lq_index } => {
                    let poll = self.shared.do_poll_load(lq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Poll(poll));
                    let key = match poll {
                        LoadPoll::Ready => OutcomeKey::PollReady,
                        LoadPoll::Wait(w) => OutcomeKey::PollWait(w),
                    };
                    cursor = match pc.branch_to(cursor, key) {
                        Some(n) => n,
                        None => return self.fallback(pc, cursor, Some(key)).map(|()| false),
                    };
                }
                ActionKind::IssueStore { sq_index } => {
                    self.shared.do_issue_store(sq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Store);
                    match pc.advance(cursor) {
                        Some(n) => cursor = n,
                        None => return self.fallback(pc, cursor, None).map(|()| false),
                    }
                }
                ActionKind::CancelLoad { lq_index } => {
                    self.shared.do_cancel_load(lq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Cancel);
                    match pc.advance(cursor) {
                        Some(n) => cursor = n,
                        None => return self.fallback(pc, cursor, None).map(|()| false),
                    }
                }
                ActionKind::Rollback { ctrl_index } => {
                    let redirect = self.shared.do_rollback(ctrl_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Rollback(redirect));
                    match pc.advance(cursor) {
                        Some(n) => cursor = n,
                        None => return self.fallback(pc, cursor, None).map(|()| false),
                    }
                }
                ActionKind::Finish => {
                    self.close_chain();
                    self.mode = EngineMode::Finished;
                    return Ok(true);
                }
            }
        }
    }

    /// Executes compiled trace segments: a linear op scan with no
    /// per-action node lookups. Every statistic, resume-state update and
    /// `accessed` mark is performed exactly as the node-at-a-time loop
    /// would for the same logical actions — segment execution is
    /// observably bit-identical to walking the chain.
    ///
    /// A carried cold edge or a cut does not necessarily end execution:
    /// when the exit target has (or, for hot mid-chain targets, earns) a
    /// compiled segment of its own, execution *chains* — swaps in the
    /// target's segment and keeps scanning — so hot loops and call/return
    /// ladders run segment-to-segment without bouncing through the
    /// node-at-a-time loop (see `PActionCache::chain_enter`).
    fn run_segment(
        &mut self,
        pc: &mut PActionCache,
        mut seg: Arc<TraceSegment>,
        budget_end: u64,
    ) -> Result<SegExit, SimError> {
        let mut ip = 0usize;
        let mut ops_run = 0u64;
        // The anchor *bytes* copy is deferred to segment exit: only the
        // last crossing's configuration can ever be read (by `fallback`
        // after a bail-out, or by recording after a budget pause), so a
        // segment pays one copy per execution instead of one per crossing
        // — a hot loop replaying inside one segment pays none at all.
        // Everything else a crossing does (resume reset, visit count) is
        // still performed per anchored op, before the op's own effects,
        // in chain order.
        let mut last_anchor: Option<NodeId> = None;
        macro_rules! crossing {
            ($anchored:expr, $node:expr) => {
                if $anchored {
                    last_anchor = Some($node);
                    self.shared.resume.cycles = 0;
                    self.shared.resume.pops = RetireCounts::default();
                    self.shared.resume.responses.clear();
                    self.shared.stats.config_visits += 1;
                }
            };
        }
        // A cold-edge or cut exit whose target chains into another
        // compiled segment swaps `seg` and restarts the scan there; the
        // deferred anchor (`last_anchor`) deliberately survives the swap —
        // the *last* crossing's configuration is still the only one a
        // later fallback or pause can read, exactly as node-at-a-time.
        macro_rules! chain_or_exit {
            ($n:expr) => {
                match pc.chain_enter($n) {
                    Some(next) => {
                        seg = next;
                        ip = 0;
                    }
                    None => break Ok(SegExit::Continue($n)),
                }
            };
        }
        let result = loop {
            ops_run += 1;
            // `TraceOp` is `Copy`: reading the op out lets the arms swap
            // `seg` (chaining) without holding a borrow into it.
            let op = seg.ops[ip];
            match op {
                TraceOp::Bulk { cycles, retired, count, touched, anchored } => {
                    crossing!(anchored, match touched.kind() {
                        TouchedKind::Span(first) => first,
                        TouchedKind::List(start, _) => seg.touched[start as usize],
                    });
                    match touched.kind() {
                        TouchedKind::Span(first) => pc.mark_accessed_span(first, count),
                        TouchedKind::List(start, len) => {
                            for &t in seg.touched_slice((start, len)) {
                                pc.mark_accessed(t);
                            }
                        }
                    }
                    let retired = seg.retires[retired as usize];
                    self.shared.stats.dynamic_actions += u64::from(count);
                    self.shared.stats.replayed_actions += u64::from(count);
                    self.chain_len += u64::from(count);
                    self.shared.stats.cycles += u64::from(cycles);
                    self.shared.stats.replayed_cycles += u64::from(cycles);
                    self.shared.apply_retire(retired, true);
                    self.shared.resume.cycles += cycles;
                    self.shared.resume.pops.add(retired);
                    if retired.insts > 0 {
                        self.last_progress = self.shared.stats.cycles;
                    }
                    ip += 1;
                    if self.shared.stats.retired_insts >= budget_end {
                        break Ok(SegExit::Budget(seg.entry_node(ip)));
                    }
                }
                TraceOp::IssueStore { node, sq_index, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    self.shared.do_issue_store(sq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Store);
                    ip += 1;
                }
                TraceOp::CancelLoad { node, lq_index, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    self.shared.do_cancel_load(lq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Cancel);
                    ip += 1;
                }
                TraceOp::Rollback { node, ctrl_index, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    let redirect = self.shared.do_rollback(ctrl_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Rollback(redirect));
                    ip += 1;
                }
                TraceOp::Fetch { node, edges, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    let feed = self.shared.consume_record_feed();
                    if let Some(e) = self.shared.fatal.take() {
                        break Err(e);
                    }
                    self.shared.resume.responses.push_back(Buffered::Feed(feed));
                    let key = outcome_of_feed(&feed);
                    match dispatch(seg.edges_slice(edges), key) {
                        Dispatch::Hot => ip += 1,
                        Dispatch::Cold(n) => chain_or_exit!(n),
                        Dispatch::Uncarried => break Ok(SegExit::Branch { node, key }),
                    }
                }
                TraceOp::IssueLoad { node, lq_index, edges, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    let interval = self.shared.do_issue_load(lq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Interval(interval));
                    let key = OutcomeKey::Interval(interval);
                    match dispatch(seg.edges_slice(edges), key) {
                        Dispatch::Hot => ip += 1,
                        Dispatch::Cold(n) => chain_or_exit!(n),
                        Dispatch::Uncarried => break Ok(SegExit::Branch { node, key }),
                    }
                }
                TraceOp::PollLoad { node, lq_index, edges, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    let poll = self.shared.do_poll_load(lq_index as usize);
                    self.shared.resume.responses.push_back(Buffered::Poll(poll));
                    let key = match poll {
                        LoadPoll::Ready => OutcomeKey::PollReady,
                        LoadPoll::Wait(w) => OutcomeKey::PollWait(w),
                    };
                    match dispatch(seg.edges_slice(edges), key) {
                        Dispatch::Hot => ip += 1,
                        Dispatch::Cold(n) => chain_or_exit!(n),
                        Dispatch::Uncarried => break Ok(SegExit::Branch { node, key }),
                    }
                }
                TraceOp::Finish { node, anchored } => {
                    crossing!(anchored, node);
                    pc.mark_accessed(node);
                    self.shared.stats.dynamic_actions += 1;
                    self.shared.stats.replayed_actions += 1;
                    self.chain_len += 1;
                    break Ok(SegExit::Finished);
                }
                TraceOp::Cut { node } => chain_or_exit!(node),
                TraceOp::Jump { op, .. } => ip = op as usize,
            }
        };
        if let Some(a) = last_anchor {
            let cfg = pc.config_at(a).expect("anchor op sits on a config head");
            self.anchor.clear();
            self.anchor.extend_from_slice(cfg);
        }
        pc.note_trace_ops(ops_run);
        result
    }

    fn close_chain(&mut self) {
        self.shared.stats.chains += 1;
        self.shared.stats.chain_len_sum += self.chain_len;
        self.shared.stats.chain_len_max = self.shared.stats.chain_len_max.max(self.chain_len);
        self.chain_len = 0;
    }

    /// An unseen outcome (or a collected link) ended fast-forwarding:
    /// resume detailed simulation from the anchor configuration, re-running
    /// its cycles with the buffered responses, and record the new branch of
    /// the action chain from the divergence point.
    fn fallback(
        &mut self,
        pc: &mut PActionCache,
        cursor: NodeId,
        key: Option<OutcomeKey>,
    ) -> Result<(), SimError> {
        self.close_chain();
        pc.resume_recording_at(cursor, key);
        let state = decode_config(&self.anchor, &self.prog)
            .map_err(|e| SimError::ConfigCorrupt(e.to_string()))?;
        self.pipeline.set_state(state);
        self.mode = EngineMode::Detailed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastsim_isa::{Asm, Reg};

    fn loop_program(n: i32) -> Program {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, n);
        a.addi(Reg::R2, Reg::R0, 0);
        a.label("loop");
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "loop");
        a.out(Reg::R2);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fast_and_slow_agree_on_simple_loop() {
        let image = loop_program(50);
        let mut fast = Simulator::new(&image, Mode::fast()).unwrap();
        let mut slow = Simulator::new(&image, Mode::Slow).unwrap();
        fast.run_to_completion().unwrap();
        slow.run_to_completion().unwrap();
        assert!(fast.finished() && slow.finished());
        assert_eq!(fast.stats().cycles, slow.stats().cycles, "cycle-exact");
        assert_eq!(fast.stats().retired_insts, slow.stats().retired_insts);
        assert_eq!(fast.stats().retired_loads, slow.stats().retired_loads);
        assert_eq!(fast.stats().retired_branches, slow.stats().retired_branches);
        assert_eq!(fast.output(), slow.output());
        assert_eq!(fast.cache_stats(), slow.cache_stats());
        assert_eq!(fast.output(), &[50 * 51 / 2]);
    }

    #[test]
    fn fast_replays_most_instructions() {
        let image = loop_program(2000);
        let mut fast = Simulator::new(&image, Mode::fast()).unwrap();
        fast.run_to_completion().unwrap();
        let s = fast.stats();
        assert!(s.replayed_insts > s.detailed_insts, "{s:?}");
        assert!(s.detailed_fraction() < 0.2, "detailed fraction {}", s.detailed_fraction());
        assert!(s.config_visits > 0);
        assert!(s.chain_len_max >= 1);
    }

    #[test]
    fn run_budget_pauses_and_resumes() {
        let image = loop_program(5000);
        let mut sim = Simulator::new(&image, Mode::fast()).unwrap();
        let p1 = sim.run(1000).unwrap();
        assert!(!p1.finished);
        assert!(p1.retired_insts >= 1000);
        let p2 = sim.run(u64::MAX).unwrap();
        assert!(p2.finished);
        // A separate uninterrupted run agrees exactly.
        let mut whole = Simulator::new(&image, Mode::fast()).unwrap();
        let pw = whole.run(u64::MAX).unwrap();
        assert_eq!(pw.cycles, p2.cycles);
        assert_eq!(pw.retired_insts, p2.retired_insts);
    }

    #[test]
    fn divergent_program_reports_error() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        a.halt();
        let image = a.assemble().unwrap();
        let mut sim = Simulator::new(&image, Mode::fast()).unwrap();
        // Direct execution runs ahead of the pipeline and exhausts its
        // fuel without ever reaching a conditional branch or indirect
        // jump: the engine reports divergence instead of spinning forever.
        match sim.run(10_000) {
            Err(SimError::Diverged { .. }) => {}
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn wild_jump_on_committed_path_is_an_error() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x0900_0000);
        a.addi(Reg::R2, Reg::R0, 1);
        a.label("x");
        a.subi(Reg::R2, Reg::R2, 1);
        a.bne(Reg::R2, Reg::R0, "x"); // gives the engine a record request
        a.jr(Reg::R1); // wild jump, committed path
        a.halt();
        let image = a.assemble().unwrap();
        let mut sim = Simulator::new(&image, Mode::fast()).unwrap();
        match sim.run(1_000_000) {
            Err(SimError::WildPath) => {}
            other => panic!("expected WildPath, got {other:?}"),
        }
    }

    #[test]
    fn mispredicted_branches_roll_back_and_still_agree() {
        // Data-dependent branch pattern that defeats the 2-bit predictor.
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, 200); // i = 200
        a.addi(Reg::R3, Reg::R0, 0);
        a.label("loop");
        a.andi(Reg::R4, Reg::R1, 1); // i & 1
        a.beq(Reg::R4, Reg::R0, "even");
        a.addi(Reg::R3, Reg::R3, 7); // odd arm
        a.j("join");
        a.label("even");
        a.addi(Reg::R3, Reg::R3, 1); // even arm
        a.label("join");
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "loop");
        a.out(Reg::R3);
        a.halt();
        let image = a.assemble().unwrap();
        let mut fast = Simulator::new(&image, Mode::fast()).unwrap();
        let mut slow = Simulator::new(&image, Mode::Slow).unwrap();
        fast.run_to_completion().unwrap();
        slow.run_to_completion().unwrap();
        assert_eq!(fast.stats().cycles, slow.stats().cycles);
        assert_eq!(fast.output(), slow.output());
        assert_eq!(fast.output(), &[100 * 7 + 100]);
        assert!(fast.emu_stats().rollbacks > 0, "pattern must mispredict");
        assert_eq!(fast.emu_stats().rollbacks, slow.emu_stats().rollbacks);
    }

    #[test]
    fn memory_traffic_agrees_between_modes() {
        // Strided stores and loads exercising the cache hierarchy.
        let mut a = Asm::new();
        a.li(Reg::R1, 0x0010_0000);
        a.addi(Reg::R2, Reg::R0, 300);
        a.label("wr");
        a.sw(Reg::R2, Reg::R1, 0);
        a.addi(Reg::R1, Reg::R1, 64);
        a.subi(Reg::R2, Reg::R2, 1);
        a.bne(Reg::R2, Reg::R0, "wr");
        a.li(Reg::R1, 0x0010_0000);
        a.addi(Reg::R2, Reg::R0, 300);
        a.addi(Reg::R3, Reg::R0, 0);
        a.label("rd");
        a.lw(Reg::R4, Reg::R1, 0);
        a.add(Reg::R3, Reg::R3, Reg::R4);
        a.addi(Reg::R1, Reg::R1, 64);
        a.subi(Reg::R2, Reg::R2, 1);
        a.bne(Reg::R2, Reg::R0, "rd");
        a.out(Reg::R3);
        a.halt();
        let image = a.assemble().unwrap();
        let mut fast = Simulator::new(&image, Mode::fast()).unwrap();
        let mut slow = Simulator::new(&image, Mode::Slow).unwrap();
        fast.run_to_completion().unwrap();
        slow.run_to_completion().unwrap();
        assert_eq!(fast.stats().cycles, slow.stats().cycles);
        assert_eq!(fast.stats().retired_insts, slow.stats().retired_insts);
        assert_eq!(fast.stats().retired_loads, slow.stats().retired_loads);
        assert_eq!(fast.stats().retired_stores, slow.stats().retired_stores);
        assert_eq!(fast.cache_stats(), slow.cache_stats());
        assert_eq!(fast.output(), &[(1..=300u32).sum::<u32>()]);
        assert!(fast.cache_stats().l1_misses > 0, "strides must miss");
    }

    #[test]
    fn flush_policy_preserves_results() {
        let image = loop_program(3000);
        let mut unbounded = Simulator::new(&image, Mode::fast()).unwrap();
        let mut tiny = Simulator::new(
            &image,
            Mode::Fast { policy: Policy::FlushOnFull { limit: 256 } },
        )
        .unwrap();
        unbounded.run_to_completion().unwrap();
        tiny.run_to_completion().unwrap();
        assert_eq!(unbounded.stats().cycles, tiny.stats().cycles);
        assert_eq!(unbounded.output(), tiny.output());
        assert!(tiny.memo_stats().unwrap().flushes > 0, "tiny cache must flush");
    }

    #[test]
    fn warm_cache_skips_detailed_simulation() {
        let image = loop_program(800);
        let mut first = Simulator::new(&image, Mode::fast()).unwrap();
        first.run_to_completion().unwrap();
        let cold_stats = *first.stats();
        let warm = first.take_warm_cache().expect("fast mode yields a warm cache");
        assert!(warm.stats().static_configs > 0);

        let mut second = Simulator::with_warm_cache(
            &image,
            warm,
            UArchConfig::table1(),
            CacheConfig::table1(),
        )
        .unwrap();
        second.run_to_completion().unwrap();
        // Identical simulation, but almost everything replays from the
        // first interaction cycle onward.
        assert_eq!(second.stats().cycles, cold_stats.cycles);
        assert_eq!(second.stats().retired_insts, cold_stats.retired_insts);
        assert!(
            second.stats().detailed_insts < cold_stats.detailed_insts / 4,
            "warm {} vs cold {}",
            second.stats().detailed_insts,
            cold_stats.detailed_insts
        );
    }

    #[test]
    fn warm_cache_rejects_other_programs() {
        let image = loop_program(100);
        let other = loop_program(101);
        let mut first = Simulator::new(&image, Mode::fast()).unwrap();
        first.run_to_completion().unwrap();
        let warm = first.take_warm_cache().unwrap();
        match Simulator::with_warm_cache(&other, warm, UArchConfig::table1(), CacheConfig::table1())
        {
            Err(BuildError::WarmCacheMismatch) => {}
            other => panic!("expected mismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn warm_cache_rejects_other_models() {
        let image = loop_program(100);
        let mut first = Simulator::new(&image, Mode::fast()).unwrap();
        first.run_to_completion().unwrap();
        let warm = first.take_warm_cache().unwrap();
        let mut wide = UArchConfig::table1();
        wide.int_alus = 4;
        match Simulator::with_warm_cache(&image, warm, wide, CacheConfig::table1()) {
            Err(BuildError::WarmCacheMismatch) => {}
            other => panic!("expected mismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn slow_mode_has_no_warm_cache() {
        let image = loop_program(50);
        let mut sim = Simulator::new(&image, Mode::Slow).unwrap();
        sim.run_to_completion().unwrap();
        assert!(sim.take_warm_cache().is_none());
    }

    #[test]
    fn in_order_issue_model_is_slower_and_still_exact() {
        use fastsim_uarch::IssueModel;
        let image = loop_program(400);
        let mut inorder_cfg = UArchConfig::table1();
        inorder_cfg.issue_model = IssueModel::InOrder;
        let mut ooo = Simulator::new(&image, Mode::fast()).unwrap();
        ooo.run_to_completion().unwrap();
        let mut fast = Simulator::with_configs(
            &image,
            Mode::fast(),
            inorder_cfg,
            CacheConfig::table1(),
        )
        .unwrap();
        let mut slow = Simulator::with_configs(
            &image,
            Mode::Slow,
            inorder_cfg,
            CacheConfig::table1(),
        )
        .unwrap();
        fast.run_to_completion().unwrap();
        slow.run_to_completion().unwrap();
        // Memoization stays exact under the variant pipeline model.
        assert_eq!(fast.stats().cycles, slow.stats().cycles);
        assert_eq!(fast.output(), slow.output());
        // And in-order issue cannot beat out-of-order issue.
        assert!(fast.stats().cycles >= ooo.stats().cycles);
    }

    #[test]
    fn warm_cache_distinguishes_issue_models() {
        use fastsim_uarch::IssueModel;
        let image = loop_program(100);
        let mut first = Simulator::new(&image, Mode::fast()).unwrap();
        first.run_to_completion().unwrap();
        let warm = first.take_warm_cache().unwrap();
        let mut inorder_cfg = UArchConfig::table1();
        inorder_cfg.issue_model = IssueModel::InOrder;
        match Simulator::with_warm_cache(&image, warm, inorder_cfg, CacheConfig::table1()) {
            Err(BuildError::WarmCacheMismatch) => {}
            other => panic!("expected mismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn gc_policies_preserve_results() {
        let image = loop_program(3000);
        let mut reference = Simulator::new(&image, Mode::Slow).unwrap();
        reference.run_to_completion().unwrap();
        for policy in [
            Policy::CopyingGc { limit: 256 },
            Policy::GenerationalGc { limit: 256 },
        ] {
            let mut sim = Simulator::new(&image, Mode::Fast { policy }).unwrap();
            sim.run_to_completion().unwrap();
            assert_eq!(sim.stats().cycles, reference.stats().cycles, "{policy:?}");
            assert_eq!(sim.output(), reference.output());
            assert!(sim.memo_stats().unwrap().collections > 0);
        }
    }
}
