//! Engine error types.

use std::fmt;

/// Error constructing a [`Simulator`](crate::Simulator).
#[derive(Clone, Debug)]
pub enum BuildError {
    /// The program image contains an undecodable instruction word.
    Decode(fastsim_isa::DecodeError),
    /// Invalid µ-architecture parameters.
    UArchConfig(String),
    /// Invalid cache parameters.
    CacheConfig(String),
    /// A warm p-action cache was recorded for a different program or
    /// processor model (see
    /// [`Simulator::with_warm_cache`](crate::Simulator::with_warm_cache)).
    WarmCacheMismatch,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Decode(e) => write!(f, "program does not decode: {e}"),
            BuildError::UArchConfig(e) => write!(f, "invalid µ-architecture config: {e}"),
            BuildError::CacheConfig(e) => write!(f, "invalid cache config: {e}"),
            BuildError::WarmCacheMismatch => {
                write!(f, "warm cache was recorded for a different program or model")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<fastsim_isa::DecodeError> for BuildError {
    fn from(e: fastsim_isa::DecodeError) -> BuildError {
        BuildError::Decode(e)
    }
}

/// Error during simulation.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The program executed an unbounded stretch with no conditional
    /// branch or indirect jump (a straight-line/direct-jump infinite loop).
    Diverged {
        /// Program counter near the loop.
        pc: u32,
    },
    /// The committed (non-speculative) execution path left the code
    /// segment — a wild jump in the target program.
    WildPath,
    /// No instruction retired for an implausibly long time; the pipeline
    /// is wedged (this indicates a simulator bug, not a program bug).
    Stuck {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
    /// A decoded configuration failed to reconstruct (p-action cache
    /// corruption; indicates a simulator bug).
    ConfigCorrupt(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Diverged { pc } => {
                write!(f, "program diverged without control transfers near {pc:#x}")
            }
            SimError::WildPath => write!(f, "committed execution path left the code segment"),
            SimError::Stuck { cycle } => write!(f, "pipeline made no progress at cycle {cycle}"),
            SimError::ConfigCorrupt(e) => write!(f, "configuration decode failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::Diverged { pc: 0x1000 }.to_string().contains("0x1000"));
        assert!(SimError::Stuck { cycle: 42 }.to_string().contains("42"));
        assert!(BuildError::UArchConfig("bad".into()).to_string().contains("bad"));
    }
}
