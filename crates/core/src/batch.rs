//! Parallel batch-simulation driver with shared warm p-action caches.
//!
//! A *batch* is a list of (program, configuration) jobs. The driver runs
//! them in *rounds* across a pool of worker threads:
//!
//! 1. At round start, the master p-action cache of each job group (jobs
//!    with the same program/µ-architecture/cache fingerprint share a
//!    group) is frozen into an immutable, `Arc`-shared
//!    [`WarmCacheSnapshot`].
//! 2. Each job thaws a private working copy of its group's snapshot
//!    ([`Simulator::with_warm_snapshot`]), replays from it, and records
//!    its own memoization delta. Jobs are claimed from a shared queue, so
//!    the pool load-balances; *which* worker runs a job never affects the
//!    job's results, because every job starts from the same frozen
//!    snapshot.
//! 3. After all jobs finish, the driver folds each job's frozen delta
//!    back into its group's master cache
//!    ([`fastsim_memo::PActionCache::merge_from`]) — **in job order**,
//!    not completion order, with first-writer-wins on configuration keys
//!    — so the merged master is also independent of scheduling.
//!
//! The consequence is the driver's central guarantee, asserted by the
//! repository's `batch_determinism` test: a batch run with any number of
//! workers produces **bit-identical per-job statistics** to a sequential
//! run of the same round structure. Across rounds, the merged master
//! cache warms up: round *n+1* replays what any job of round *n*
//! recorded, so the fleet-wide memoization hit rate rises.
//!
//! ```
//! use fastsim_core::batch::{BatchDriver, BatchJob};
//! use fastsim_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.addi(Reg::R1, Reg::R0, 100);
//! a.label("l");
//! a.subi(Reg::R1, Reg::R1, 1);
//! a.bne(Reg::R1, Reg::R0, "l");
//! a.halt();
//! let program = a.assemble().unwrap();
//!
//! let jobs = vec![BatchJob::new("loop-a", program.clone()), BatchJob::new("loop-b", program)];
//! let mut driver = BatchDriver::new(2);
//! let round1 = driver.run_round(&jobs).unwrap();
//! let round2 = driver.run_round(&jobs).unwrap();
//! // Same snapshot per round: both jobs report identical statistics...
//! assert_eq!(round1.jobs[0].stats, round1.jobs[1].stats);
//! // ...and the merged warm cache makes round 2 replay round 1's work.
//! assert!(round2.memo_hit_rate() > round1.memo_hit_rate());
//! ```

pub mod store;

use crate::engine::{fingerprint, Simulator, WarmCacheSnapshot};
use crate::error::{BuildError, SimError};
use crate::stats::SimStats;
use fastsim_isa::Program;
use fastsim_mem::{CacheConfig, CacheStats, HierarchyConfig, LevelStats};
use fastsim_memo::{
    CacheSnapshot, MemoStats, MergeOutcome, PActionCache, Policy, DEFAULT_HOTNESS_THRESHOLD,
};
use fastsim_uarch::UArchConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One simulation job of a batch: a program under a processor model.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Display name (reports refer to jobs by name).
    pub name: String,
    /// The program image to simulate.
    pub program: Program,
    /// µ-architecture parameters.
    pub uarch: UArchConfig,
    /// Memory-hierarchy parameters (any depth; a flat [`CacheConfig`]
    /// lowers via `.into()`).
    pub hierarchy: HierarchyConfig,
    /// p-action cache replacement policy. Jobs with the same fingerprint
    /// share one master cache whose policy is fixed by the first job seen
    /// for that group.
    pub policy: Policy,
    /// Trace-compilation hotness threshold for this job's private working
    /// cache (`u32::MAX` disables trace-compiled replay; traces are never
    /// carried into the shared master).
    pub trace_hotness: u32,
}

impl BatchJob {
    /// A job with the paper's Table 1 parameters and an unbounded
    /// p-action cache.
    pub fn new(name: impl Into<String>, program: Program) -> BatchJob {
        BatchJob {
            name: name.into(),
            program,
            uarch: UArchConfig::table1(),
            hierarchy: CacheConfig::table1().into(),
            policy: Policy::Unbounded,
            trace_hotness: DEFAULT_HOTNESS_THRESHOLD,
        }
    }

    /// The job's warm-cache fingerprint (its sharing group).
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&self.program, &self.uarch, &self.hierarchy)
    }
}

/// Why a batch round failed. The offending job is identified by index and
/// name; the first failing job (in job order) is reported.
#[derive(Clone, Debug)]
pub enum BatchError {
    /// A job's simulator could not be built.
    Build {
        /// Index of the job in the round's job list.
        job: usize,
        /// The job's name.
        name: String,
        /// The underlying build error.
        error: BuildError,
    },
    /// A job's simulation failed.
    Sim {
        /// Index of the job in the round's job list.
        job: usize,
        /// The job's name.
        name: String,
        /// The underlying simulation error.
        error: SimError,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Build { job, name, error } => {
                write!(f, "job #{job} `{name}` failed to build: {error}")
            }
            BatchError::Sim { job, name, error } => {
                write!(f, "job #{job} `{name}` failed to simulate: {error}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Why a *single* job run ([`run_single`]) failed. This is the
/// job-granular error the serving front end consumes; [`BatchError`] wraps
/// the same conditions with the job's index and name for whole-round
/// reporting.
#[derive(Debug)]
pub enum JobFailure {
    /// The simulator could not be built.
    Build(BuildError),
    /// The simulation failed (diverging or wild program, wedged pipeline).
    Sim(SimError),
    /// The job exceeded its deadline and was abandoned between budget
    /// chunks (the partial simulation is discarded; nothing is merged).
    Timeout {
        /// How long the job had run when the deadline check abandoned it.
        elapsed: Duration,
    },
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Build(e) => write!(f, "failed to build: {e}"),
            JobFailure::Sim(e) => write!(f, "failed to simulate: {e}"),
            JobFailure::Timeout { elapsed } => {
                write!(f, "timed out after {:.1}s", elapsed.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for JobFailure {}

/// Per-job results of one batch round.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's name.
    pub name: String,
    /// The job's warm-cache fingerprint (sharing group).
    pub fingerprint: u64,
    /// Engine statistics — deterministic: identical for any worker count.
    pub stats: SimStats,
    /// The job's final memoization counters (cumulative: they continue
    /// from the snapshot the job thawed).
    pub memo: MemoStats,
    /// Aggregate cache-hierarchy statistics — deterministic.
    pub cache_stats: CacheStats,
    /// Per-level cache statistics, nearest level first — deterministic.
    pub level_stats: Vec<LevelStats>,
    /// Configuration-lookup hits this job performed (round-local delta
    /// against the inherited snapshot) — deterministic.
    pub memo_hits: u64,
    /// Configuration-lookup misses this job performed — deterministic.
    pub memo_misses: u64,
    /// What this job's delta contributed to the merged master cache —
    /// deterministic (merges run in job order).
    pub merge: MergeOutcome,
    /// Host wall time of the job (*not* deterministic).
    pub wall: Duration,
}

impl JobReport {
    /// The job's round-local memoization hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Fleet-wide results of one batch round.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job reports, in job order.
    pub jobs: Vec<JobReport>,
    /// Worker threads the round ran with.
    pub workers: usize,
    /// Host wall time of the whole round (*not* deterministic).
    pub wall: Duration,
}

impl BatchReport {
    /// Total instructions retired across the fleet.
    pub fn total_insts(&self) -> u64 {
        self.jobs.iter().map(|j| j.stats.retired_insts).sum()
    }

    /// Total simulated cycles across the fleet.
    pub fn total_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.stats.cycles).sum()
    }

    /// Simulated instructions per host second, fleet-wide (wall-clock
    /// derived; not deterministic).
    pub fn insts_per_sec(&self) -> f64 {
        self.total_insts() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fleet-wide memoization hit rate of this round (round-local: only
    /// lookups performed by this round's jobs count).
    pub fn memo_hit_rate(&self) -> f64 {
        let hits: u64 = self.jobs.iter().map(|j| j.memo_hits).sum();
        let misses: u64 = self.jobs.iter().map(|j| j.memo_misses).sum();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fleet-wide GC survival rate (bytes surviving collections / bytes
    /// scanned), over the jobs' cumulative counters.
    pub fn gc_survival_rate(&self) -> f64 {
        let survived: u64 = self.jobs.iter().map(|j| j.memo.gc_survived_bytes).sum();
        let scanned: u64 = self.jobs.iter().map(|j| j.memo.gc_scanned_bytes).sum();
        if scanned == 0 {
            0.0
        } else {
            survived as f64 / scanned as f64
        }
    }

    /// Sum of the jobs' merge contributions.
    pub fn merged(&self) -> MergeOutcome {
        let mut total = MergeOutcome::default();
        for j in &self.jobs {
            total.configs_added += j.merge.configs_added;
            total.actions_added += j.merge.actions_added;
            total.branches_grafted += j.merge.branches_grafted;
            total.configs_deduped += j.merge.configs_deduped;
            total.bytes_added += j.merge.bytes_added;
        }
        total
    }
}

/// What one finished job hands back: its report (with
/// [`JobReport::merge`] still defaulted — the caller fills it in when the
/// delta is actually merged) and the frozen memoization delta to fold into
/// the group's master cache.
pub struct SingleOutcome {
    /// The job's report; `merge` is [`MergeOutcome::default`] until the
    /// caller merges `delta`.
    pub report: JobReport,
    /// The job's frozen p-action-cache delta, a descendant of the snapshot
    /// the job ran from (feed to [`BatchDriver::merge_delta`]).
    pub delta: CacheSnapshot,
}

/// Runs one job from a frozen warm snapshot and freezes its delta.
///
/// This is the job-granular core of the batch driver, exposed for serving
/// front ends that schedule jobs one at a time instead of in rounds. The
/// outcome depends only on `(job, snapshot)` — never on what else is
/// running — which is what makes served results bit-identical to an
/// offline [`BatchDriver::run_round`] of the same jobs: warmth moves work
/// between the detailed and replay paths but cannot change simulated
/// results (cycles, retirement, cache traffic).
///
/// With a `deadline`, the simulation runs in instruction-budget chunks and
/// is abandoned with [`JobFailure::Timeout`] once the deadline passes
/// between chunks (chunked runs are bit-identical to straight runs; the
/// engine's pause/resume is transparent). Nothing is merged on failure.
///
/// # Errors
///
/// Returns [`JobFailure`] if the simulator cannot be built, the simulation
/// fails, or the deadline expires.
pub fn run_single(
    job: &BatchJob,
    snapshot: &WarmCacheSnapshot,
    deadline: Option<Instant>,
) -> Result<SingleOutcome, JobFailure> {
    /// Instructions simulated between deadline checks (small enough that a
    /// timeout is honoured promptly, large enough to stay off the hot path).
    const DEADLINE_CHUNK_INSTS: u64 = 50_000;

    let start = Instant::now();
    let mut sim =
        Simulator::with_warm_snapshot(&job.program, snapshot, job.uarch, job.hierarchy.clone())
            .map_err(JobFailure::Build)?;
    sim.set_trace_hotness(job.trace_hotness);
    match deadline {
        None => sim.run_to_completion().map_err(JobFailure::Sim)?,
        Some(d) => loop {
            if Instant::now() >= d {
                return Err(JobFailure::Timeout { elapsed: start.elapsed() });
            }
            let progress = sim.run(DEADLINE_CHUNK_INSTS).map_err(JobFailure::Sim)?;
            if progress.finished {
                break;
            }
        },
    }
    let stats = *sim.stats();
    let cache_stats = *sim.cache_stats();
    let level_stats = sim.cache_level_stats().to_vec();
    let memo = *sim.memo_stats().expect("batch jobs always run FastSim");
    let warm = sim.take_warm_cache().expect("FastSim run yields a warm cache");
    let delta = warm.into_pcache().freeze();
    let inherited = snapshot.stats();
    Ok(SingleOutcome {
        report: JobReport {
            name: job.name.clone(),
            fingerprint: snapshot.fingerprint(),
            stats,
            memo,
            cache_stats,
            level_stats,
            memo_hits: memo.config_hits - inherited.config_hits,
            memo_misses: memo.config_misses - inherited.config_misses,
            merge: MergeOutcome::default(),
            wall: start.elapsed(),
        },
        delta,
    })
}

/// The parallel batch-simulation driver. See the [module docs](self).
///
/// The driver owns one master p-action cache per job group (fingerprint)
/// and carries them across rounds, so repeated
/// [`run_round`](BatchDriver::run_round) calls on overlapping job lists
/// keep getting warmer.
#[derive(Debug)]
pub struct BatchDriver {
    workers: usize,
    masters: HashMap<u64, PActionCache>,
    /// Cache of the latest freeze per group, re-frozen lazily only when the
    /// master's replayable content changed since
    /// ([`PActionCache::freeze_if_newer`]): repeated
    /// [`current_snapshot`](BatchDriver::current_snapshot) calls across
    /// quiet periods are O(1) instead of cloning the arena.
    frozen: HashMap<u64, WarmCacheSnapshot>,
}

impl BatchDriver {
    /// A driver with the given worker-thread count (clamped to at least
    /// 1). `BatchDriver::new(1)` runs jobs inline on the calling thread —
    /// by construction it produces the same per-job statistics as any
    /// other worker count.
    pub fn new(workers: usize) -> BatchDriver {
        BatchDriver { workers: workers.max(1), masters: HashMap::new(), frozen: HashMap::new() }
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The master caches' memoization statistics, one entry per job group,
    /// in ascending fingerprint order.
    pub fn master_stats(&self) -> Vec<(u64, MemoStats)> {
        let mut v: Vec<(u64, MemoStats)> =
            self.masters.iter().map(|(&fp, pc)| (fp, *pc.stats())).collect();
        v.sort_by_key(|&(fp, _)| fp);
        v
    }

    /// The current frozen warm cache of the job group `fingerprint`, if
    /// any round has populated it. Always freezes a fresh copy; prefer
    /// [`current_snapshot`](BatchDriver::current_snapshot), which reuses
    /// the last freeze across quiet periods.
    pub fn warm_snapshot(&self, fingerprint: u64) -> Option<WarmCacheSnapshot> {
        self.masters
            .get(&fingerprint)
            .map(|pc| WarmCacheSnapshot::from_parts(Arc::new(pc.freeze()), fingerprint))
    }

    /// Ensures the job's group master exists (created with the job's
    /// policy on first sight, like [`run_round`](BatchDriver::run_round))
    /// and returns the group fingerprint.
    ///
    /// This is the admission hook for job-at-a-time front ends (the
    /// serving layer): `ensure_group` +
    /// [`current_snapshot`](BatchDriver::current_snapshot) +
    /// [`run_single`] + [`merge_delta`](BatchDriver::merge_delta) is the
    /// single-job decomposition of one `run_round` slot.
    pub fn ensure_group(&mut self, job: &BatchJob) -> u64 {
        let fp = job.fingerprint();
        self.masters.entry(fp).or_insert_with(|| PActionCache::new(job.policy));
        fp
    }

    /// The group's current frozen snapshot, **re-freezing only if the
    /// master changed** since the last freeze (a merge landed, or the
    /// group is new). Returns `None` for an unknown group (no
    /// [`ensure_group`](BatchDriver::ensure_group) or
    /// [`run_round`](BatchDriver::run_round) created it yet).
    ///
    /// This is the *re-freeze* hook: a serving front end calls it on its
    /// own cadence (say every N merged deltas) and hands the returned
    /// snapshot to every job it schedules until the next re-freeze, so
    /// late jobs start warmer than early ones while each job still runs
    /// from one immutable snapshot.
    pub fn current_snapshot(&mut self, fingerprint: u64) -> Option<WarmCacheSnapshot> {
        let master = self.masters.get(&fingerprint)?;
        if let Some(prev) = self.frozen.get(&fingerprint) {
            match master.freeze_if_newer(prev.cache()) {
                None => return Some(prev.clone()),
                Some(fresh) => {
                    let ws = WarmCacheSnapshot::from_parts(Arc::new(fresh), fingerprint);
                    self.frozen.insert(fingerprint, ws.clone());
                    return Some(ws);
                }
            }
        }
        let ws = WarmCacheSnapshot::from_parts(Arc::new(master.freeze()), fingerprint);
        self.frozen.insert(fingerprint, ws.clone());
        Some(ws)
    }

    /// Adopts a loaded (or shipped) snapshot as the master of its group,
    /// **if the group does not exist yet** — the boot-warming primitive: a
    /// restarted process calls this for every snapshot the
    /// [`SnapshotStore`](store::SnapshotStore) holds, and its first job
    /// per group starts at the persisted hit rate instead of cold.
    ///
    /// Returns `false` (and changes nothing) when the group already has a
    /// master — use [`import_snapshot`](BatchDriver::import_snapshot) to
    /// fold warmth into a live group.
    pub fn adopt_snapshot(&mut self, snapshot: &WarmCacheSnapshot) -> bool {
        let fp = snapshot.fingerprint();
        if self.masters.contains_key(&fp) {
            return false;
        }
        self.masters.insert(fp, PActionCache::from_snapshot(snapshot.cache()));
        // The thawed master's version equals the snapshot's, so the next
        // `current_snapshot` reuses this Arc instead of re-freezing.
        self.frozen.insert(fp, snapshot.clone());
        true
    }

    /// Folds a **foreign** snapshot — shipped from a peer process, so not
    /// a descendant of this driver's master — into its group.
    ///
    /// An absent group adopts the snapshot wholesale (returns `None`); a
    /// live group merges it key-by-key with first-writer-wins
    /// ([`PActionCache::merge_foreign`]) and returns what was copied. The
    /// merged warmth becomes visible at the next
    /// [`current_snapshot`](BatchDriver::current_snapshot) re-freeze.
    pub fn import_snapshot(&mut self, snapshot: &WarmCacheSnapshot) -> Option<MergeOutcome> {
        let fp = snapshot.fingerprint();
        match self.masters.get_mut(&fp) {
            None => {
                let adopted = self.adopt_snapshot(snapshot);
                debug_assert!(adopted);
                None
            }
            Some(master) => Some(master.merge_foreign(snapshot.cache())),
        }
    }

    /// Drains one job's frozen delta into its group's master cache
    /// (first-writer-wins, idempotent — see
    /// [`PActionCache::merge_from`]). Returns `None` for an unknown group.
    ///
    /// The merged material becomes visible to new jobs only at the next
    /// [`current_snapshot`](BatchDriver::current_snapshot) re-freeze;
    /// jobs already running keep their immutable snapshots.
    pub fn merge_delta(
        &mut self,
        fingerprint: u64,
        delta: &CacheSnapshot,
    ) -> Option<MergeOutcome> {
        self.masters.get_mut(&fingerprint).map(|m| m.merge_from(delta))
    }

    /// Runs one round: every job once, across the worker pool, each
    /// replaying from its group's round-start snapshot; then merges the
    /// job deltas into the master caches in job order.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) [`BatchError`] if any job fails to
    /// build or simulate. The master caches are left as they were at round
    /// start (no partial merges).
    pub fn run_round(&mut self, jobs: &[BatchJob]) -> Result<BatchReport, BatchError> {
        let round_start = Instant::now();

        // Freeze one snapshot per job group. Groups are created on first
        // sight with the job's policy; the freeze is reused from the last
        // round when nothing merged since (`current_snapshot`).
        let fps: Vec<u64> = jobs.iter().map(|j| j.fingerprint()).collect();
        let mut snapshots: HashMap<u64, WarmCacheSnapshot> = HashMap::new();
        for (job, &fp) in jobs.iter().zip(&fps) {
            self.ensure_group(job);
            snapshots
                .entry(fp)
                .or_insert_with(|| self.current_snapshot(fp).expect("group created above"));
        }

        // Run the jobs: a shared queue of job indices, one slot per job
        // for the outcome. Claiming order is racy; results are not.
        let next = AtomicUsize::new(0);
        let outcomes: Mutex<Vec<Option<Result<SingleOutcome, BatchError>>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        let pool = self.workers.min(jobs.len()).max(1);
        if pool == 1 {
            while let Some(i) = claim(&next, jobs.len()) {
                let res = run_job(i, &jobs[i], &snapshots[&fps[i]]);
                outcomes.lock().unwrap()[i] = Some(res);
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..pool {
                    scope.spawn(|| {
                        while let Some(i) = claim(&next, jobs.len()) {
                            let res = run_job(i, &jobs[i], &snapshots[&fps[i]]);
                            outcomes.lock().unwrap()[i] = Some(res);
                        }
                    });
                }
            });
        }

        // Collect in job order; fail on the first failing job.
        let mut reports: Vec<JobReport> = Vec::with_capacity(jobs.len());
        let mut deltas: Vec<CacheSnapshot> = Vec::with_capacity(jobs.len());
        for slot in outcomes.into_inner().unwrap() {
            let outcome = slot.expect("every claimed job stores an outcome")?;
            reports.push(outcome.report);
            deltas.push(outcome.delta);
        }

        // Merge phase: job order, first writer wins. Deterministic given
        // the job list, whatever the pool did.
        for (i, delta) in deltas.iter().enumerate() {
            let master = self.masters.get_mut(&fps[i]).expect("group created above");
            reports[i].merge = master.merge_from(delta);
        }

        Ok(BatchReport { jobs: reports, workers: pool, wall: round_start.elapsed() })
    }
}

/// Claims the next unclaimed job index, if any.
fn claim(next: &AtomicUsize, len: usize) -> Option<usize> {
    let i = next.fetch_add(1, Ordering::Relaxed);
    (i < len).then_some(i)
}

/// Runs one job from its group's round-start snapshot ([`run_single`]),
/// wrapping failures with the job's round index and name.
fn run_job(
    index: usize,
    job: &BatchJob,
    snapshot: &WarmCacheSnapshot,
) -> Result<SingleOutcome, BatchError> {
    run_single(job, snapshot, None).map_err(|failure| match failure {
        JobFailure::Build(error) => BatchError::Build { job: index, name: job.name.clone(), error },
        JobFailure::Sim(error) => BatchError::Sim { job: index, name: job.name.clone(), error },
        JobFailure::Timeout { .. } => unreachable!("run_round sets no deadline"),
    })
}

// The scoped workers share jobs and snapshots by reference.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<BatchJob>();
    assert_sync::<WarmCacheSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use fastsim_isa::{Asm, Reg};

    fn loop_program(iters: i32) -> Program {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, iters);
        a.label("l");
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "l");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn jobs_in_a_round_share_the_round_start_snapshot() {
        // Two identical jobs in one round: neither sees the other's
        // recordings, so their statistics are identical — even the memo
        // counters.
        let jobs =
            vec![BatchJob::new("a", loop_program(50)), BatchJob::new("b", loop_program(50))];
        let mut driver = BatchDriver::new(2);
        let report = driver.run_round(&jobs).unwrap();
        assert_eq!(report.jobs[0].stats, report.jobs[1].stats);
        assert_eq!(report.jobs[0].memo, report.jobs[1].memo);
        assert_eq!(report.jobs[0].memo_hits, report.jobs[1].memo_hits);
        // First writer (job 0, merge order) contributed the configs; job
        // 1's identical delta deduped against them.
        assert!(report.jobs[0].merge.configs_added > 0);
        assert_eq!(report.jobs[1].merge.configs_added, 0);
        assert!(report.jobs[1].merge.configs_deduped > 0);
    }

    #[test]
    fn second_round_replays_the_merged_cache() {
        let jobs = vec![BatchJob::new("a", loop_program(80))];
        let mut driver = BatchDriver::new(1);
        let r1 = driver.run_round(&jobs).unwrap();
        let r2 = driver.run_round(&jobs).unwrap();
        assert!(r2.memo_hit_rate() > r1.memo_hit_rate());
        assert!(
            r2.jobs[0].stats.detailed_insts < r1.jobs[0].stats.detailed_insts,
            "warm round needs less detailed simulation"
        );
        // Cycle counts are simulation results; warmth must not change them.
        assert_eq!(r1.jobs[0].stats.cycles, r2.jobs[0].stats.cycles);
        // Nothing new to merge the second time around.
        assert!(r2.jobs[0].merge.is_noop());
    }

    #[test]
    fn distinct_models_get_distinct_masters() {
        let mut narrow = UArchConfig::table1();
        narrow.fetch_width = 2;
        narrow.decode_width = 2;
        narrow.retire_width = 2;
        let mut job_b = BatchJob::new("narrow", loop_program(30));
        job_b.uarch = narrow;
        let jobs = vec![BatchJob::new("wide", loop_program(30)), job_b];
        assert_ne!(jobs[0].fingerprint(), jobs[1].fingerprint());
        let mut driver = BatchDriver::new(2);
        let report = driver.run_round(&jobs).unwrap();
        let masters = driver.master_stats();
        assert_eq!(masters.len(), 2, "one master per fingerprint group");
        assert!(masters.iter().all(|(_, s)| s.static_configs > 0));
        // Each job merged into its own group's master.
        assert!(report.jobs.iter().all(|j| j.merge.configs_added > 0));
    }

    #[test]
    fn failing_job_reports_its_index_and_spares_the_masters() {
        let ok = BatchJob::new("ok", loop_program(10));
        let mut bad = BatchJob::new("bad", loop_program(10));
        bad.uarch.fetch_width = 0; // invalid: simulator won't build
        let mut driver = BatchDriver::new(2);
        match driver.run_round(&[ok, bad]) {
            Err(BatchError::Build { job, name, .. }) => {
                assert_eq!(job, 1);
                assert_eq!(name, "bad");
            }
            other => panic!("expected a build error, got {other:?}"),
        }
        assert!(driver.master_stats().iter().all(|(_, s)| s.static_configs == 0));
    }
}
