//! # fastsim-core
//!
//! The FastSim engine: wires speculative direct-execution
//! ([`fastsim_emu`]), the detailed out-of-order µ-architecture simulator
//! ([`fastsim_uarch`]), the non-blocking cache simulator ([`fastsim_mem`])
//! and the p-action cache ([`fastsim_memo`]) into the complete simulator of
//! the paper (Figure 2 / Figure 4).
//!
//! A [`Simulator`] runs in one of two modes:
//!
//! * [`Mode::Fast`] — **FastSim**: detailed simulation records
//!   configurations and actions into the p-action cache; whenever the
//!   current configuration is already cached, the engine *fast-forwards*,
//!   replaying the recorded action chain (really performing each cache
//!   call, direct-execution resumption and queue pop, and checking each
//!   environment-dependent outcome against the recorded branches) until an
//!   unseen outcome sends it back to detailed simulation.
//! * [`Mode::Slow`] — **SlowSim**: the same simulator with memoization
//!   disabled ("the fast-forwarding simulator was turned off and no
//!   configurations were encoded"), the paper's baseline for measuring the
//!   memoization speedup.
//!
//! Both modes produce *identical* cycle counts and statistics — the
//! paper's central claim, asserted by this crate's property tests and the
//! repository's integration tests.

#![deny(missing_docs)]

pub mod batch;
mod engine;
mod error;
mod stats;

pub use batch::store::{
    LoadReport, LoadedSnapshot, PruneReport, RejectCause, RejectedSnapshot, SavedSnapshot,
    SnapshotStore,
};
pub use batch::{
    run_single, BatchDriver, BatchError, BatchJob, BatchReport, JobFailure, JobReport,
    SingleOutcome,
};
pub use engine::{CycleObserver, Mode, Progress, Simulator, WarmCache, WarmCacheSnapshot};
pub use fastsim_uarch::{CycleSummary, FetchPc, IqEntry, IqState, PipelineState};
pub use error::{BuildError, SimError};
pub use stats::SimStats;

pub use fastsim_mem::{
    CacheConfig, CacheLevelConfig, CacheStats, HierarchyConfig, LevelStats, WritePolicy,
};
pub use fastsim_memo::{MemoStats, Policy, SnapshotDecodeError};
pub use fastsim_emu::{BranchPredictor, PredictorKind};
pub use fastsim_uarch::{IssueModel, UArchConfig};
