//! The durable snapshot store: a fingerprint-keyed on-disk library of
//! encoded [`WarmCacheSnapshot`]s.
//!
//! Layout — one directory per warm-cache fingerprint, one file per saved
//! generation:
//!
//! ```text
//! <dir>/<fingerprint:016x>/gen-<generation:08>.snap
//! ```
//!
//! Writes are crash-safe by construction: the encoded bytes go to a
//! hidden temporary in the same directory, then a single [`fs::rename`]
//! publishes the generation. A reader (or a concurrent prune) therefore
//! never observes a half-written snapshot file — the worst a crash leaves
//! behind is an orphaned `.tmp-*` file, which every scan ignores and
//! [`SnapshotStore::sweep_tmp`] clears.
//!
//! Generations only grow: each save becomes `max(existing) + 1`. Loading
//! walks generations newest-first and falls back past any file that fails
//! to decode (collecting the typed rejection), so one corrupt newest
//! generation degrades to the previous one instead of a cold start.
//! Pruning keeps the newest `keep` generations per fingerprint and — by
//! construction, not just policy — **never deletes a generation newer
//! than the plan it was computed from**, so a save landing mid-prune is
//! safe.

use crate::engine::WarmCacheSnapshot;
use fastsim_memo::SnapshotDecodeError;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File extension of encoded snapshots.
pub const SNAPSHOT_EXTENSION: &str = "snap";

/// A fingerprint-keyed on-disk library of encoded warm-cache snapshots.
/// See the [module docs](self).
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

/// Receipt for one [`SnapshotStore::save`].
#[derive(Clone, Debug)]
pub struct SavedSnapshot {
    /// The generation number the save published.
    pub generation: u64,
    /// Encoded size in bytes.
    pub bytes: usize,
    /// Where the snapshot landed.
    pub path: PathBuf,
}

/// One successfully loaded snapshot.
#[derive(Clone, Debug)]
pub struct LoadedSnapshot {
    /// The decoded snapshot, ready to adopt into a
    /// [`BatchDriver`](crate::batch::BatchDriver) (see
    /// [`BatchDriver::adopt_snapshot`](crate::batch::BatchDriver::adopt_snapshot)).
    pub snapshot: WarmCacheSnapshot,
    /// The generation it came from.
    pub generation: u64,
    /// Encoded size in bytes.
    pub bytes: usize,
    /// The file it came from.
    pub path: PathBuf,
}

/// Why a snapshot file was skipped during a load.
#[derive(Debug)]
pub enum RejectCause {
    /// The file could not be read.
    Io(io::Error),
    /// The bytes failed strict decoding — see [`SnapshotDecodeError`].
    Decode(SnapshotDecodeError),
}

impl fmt::Display for RejectCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectCause::Io(e) => write!(f, "unreadable: {e}"),
            RejectCause::Decode(e) => write!(f, "rejected: {e}"),
        }
    }
}

/// One snapshot file rejected (and skipped) during a load.
#[derive(Debug)]
pub struct RejectedSnapshot {
    /// The offending file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub cause: RejectCause,
}

impl fmt::Display for RejectedSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.cause)
    }
}

/// Everything a [`SnapshotStore::load_all`] boot scan found.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// The newest decodable snapshot of every fingerprint, ascending by
    /// fingerprint.
    pub loaded: Vec<LoadedSnapshot>,
    /// Every file that had to be skipped, with its typed cause.
    pub rejected: Vec<RejectedSnapshot>,
}

/// What a [`SnapshotStore::prune`] removed and kept.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Snapshot files deleted.
    pub removed: usize,
    /// Snapshot files kept (across all fingerprints).
    pub kept: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the root directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn group_dir(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}"))
    }

    fn generation_path(&self, fingerprint: u64, generation: u64) -> PathBuf {
        self.group_dir(fingerprint).join(format!("gen-{generation:08}.{SNAPSHOT_EXTENSION}"))
    }

    /// All stored generations of `fingerprint`, ascending. Temporaries and
    /// foreign files are ignored.
    pub fn generations(&self, fingerprint: u64) -> io::Result<Vec<u64>> {
        let dir = self.group_dir(fingerprint);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut gens = Vec::new();
        for entry in entries {
            let name = entry?.file_name();
            if let Some(g) = parse_generation(&name.to_string_lossy()) {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// The newest stored generation of `fingerprint`, if any.
    pub fn latest_generation(&self, fingerprint: u64) -> io::Result<Option<u64>> {
        Ok(self.generations(fingerprint)?.last().copied())
    }

    /// Persists `snapshot` as a new generation of its fingerprint.
    ///
    /// The write is atomic: encode → temporary file in the group directory
    /// → `fsync`-free `rename`. A crash mid-save leaves at most an ignored
    /// `.tmp-*` file; it never damages an existing generation.
    ///
    /// # Errors
    ///
    /// Any I/O error along the way (the temporary is cleaned up
    /// best-effort on failure).
    pub fn save(&self, snapshot: &WarmCacheSnapshot) -> io::Result<SavedSnapshot> {
        let fingerprint = snapshot.fingerprint();
        let dir = self.group_dir(fingerprint);
        fs::create_dir_all(&dir)?;
        let generation = self.latest_generation(fingerprint)?.map_or(1, |g| g + 1);
        let bytes = snapshot.encode();
        let tmp = dir.join(format!(".tmp-gen-{generation:08}-{}", std::process::id()));
        fs::write(&tmp, &bytes)?;
        let path = self.generation_path(fingerprint, generation);
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(SavedSnapshot { generation, bytes: bytes.len(), path })
    }

    /// Loads the newest decodable snapshot of `fingerprint`, walking
    /// generations newest-first past any rejected file. Every decode
    /// verifies the snapshot's header fingerprint against `fingerprint` —
    /// a file smuggled into the wrong group directory is rejected, never
    /// adopted.
    ///
    /// # Errors
    ///
    /// Only directory-scan I/O errors; per-file read and decode failures
    /// are *collected*, not returned, so one bad file cannot mask an older
    /// good one.
    pub fn load_latest(
        &self,
        fingerprint: u64,
    ) -> io::Result<(Option<LoadedSnapshot>, Vec<RejectedSnapshot>)> {
        let mut rejected = Vec::new();
        for generation in self.generations(fingerprint)?.into_iter().rev() {
            let path = self.generation_path(fingerprint, generation);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    rejected.push(RejectedSnapshot { path, cause: RejectCause::Io(e) });
                    continue;
                }
            };
            match WarmCacheSnapshot::decode(&bytes, Some(fingerprint)) {
                Ok(snapshot) => {
                    return Ok((
                        Some(LoadedSnapshot {
                            snapshot,
                            generation,
                            bytes: bytes.len(),
                            path,
                        }),
                        rejected,
                    ));
                }
                Err(e) => {
                    rejected.push(RejectedSnapshot { path, cause: RejectCause::Decode(e) });
                }
            }
        }
        Ok((None, rejected))
    }

    /// Every fingerprint with a group directory in the store, ascending.
    pub fn fingerprints(&self) -> io::Result<Vec<u64>> {
        let mut fps = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.len() == 16 {
                if let Ok(fp) = u64::from_str_radix(&name, 16) {
                    fps.push(fp);
                }
            }
        }
        fps.sort_unstable();
        Ok(fps)
    }

    /// Boot scan: loads the newest decodable snapshot of every
    /// fingerprint in the store, collecting every rejection.
    ///
    /// # Errors
    ///
    /// Only directory-scan I/O errors (see
    /// [`load_latest`](SnapshotStore::load_latest)).
    pub fn load_all(&self) -> io::Result<LoadReport> {
        let mut report = LoadReport::default();
        for fp in self.fingerprints()? {
            let (loaded, mut rejected) = self.load_latest(fp)?;
            report.loaded.extend(loaded);
            report.rejected.append(&mut rejected);
        }
        Ok(report)
    }

    /// Computes the deletion plan for [`prune`](SnapshotStore::prune):
    /// every generation file *beyond the newest `keep`* of each
    /// fingerprint, as observed right now. The newest generation of a
    /// fingerprint is never planned (`keep` is clamped to at least 1), and
    /// files that appear after this scan are by construction not in the
    /// plan — which is what makes a save racing a prune safe.
    pub(crate) fn plan_prune(&self, keep: usize) -> io::Result<(Vec<PathBuf>, usize)> {
        let keep = keep.max(1);
        let mut plan = Vec::new();
        let mut kept = 0;
        for fp in self.fingerprints()? {
            let gens = self.generations(fp)?;
            let cut = gens.len().saturating_sub(keep);
            kept += gens.len() - cut;
            for &g in &gens[..cut] {
                plan.push(self.generation_path(fp, g));
            }
        }
        Ok((plan, kept))
    }

    /// Executes a deletion plan. A file already gone (raced by another
    /// pruner) is not an error.
    pub(crate) fn execute_prune(&self, plan: &[PathBuf]) -> io::Result<usize> {
        let mut removed = 0;
        for path in plan {
            match fs::remove_file(path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(removed)
    }

    /// Deletes all but the newest `keep` generations of every fingerprint
    /// (`keep` is clamped to at least 1: the newest generation is never
    /// deleted, even when over budget). Temporaries are never touched.
    ///
    /// # Errors
    ///
    /// Any I/O error scanning or deleting (a concurrently-vanished file is
    /// not an error).
    pub fn prune(&self, keep: usize) -> io::Result<PruneReport> {
        let (plan, kept) = self.plan_prune(keep)?;
        let removed = self.execute_prune(&plan)?;
        Ok(PruneReport { removed, kept })
    }

    /// Removes orphaned `.tmp-*` files left by crashed saves. Safe to run
    /// any time: live saves use process-unique temporary names and publish
    /// with a rename, so only genuinely dead temporaries match.
    ///
    /// # Errors
    ///
    /// Any I/O error scanning or deleting.
    pub fn sweep_tmp(&self) -> io::Result<usize> {
        let mut removed = 0;
        for fp in self.fingerprints()? {
            for entry in fs::read_dir(self.group_dir(fp))? {
                let entry = entry?;
                if entry.file_name().to_string_lossy().starts_with(".tmp-") {
                    match fs::remove_file(entry.path()) {
                        Ok(()) => removed += 1,
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(removed)
    }
}

/// Parses `gen-<number>.snap` file names; anything else is not a stored
/// generation.
fn parse_generation(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("gen-")?;
    let digits = rest.strip_suffix(".snap")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Mode, Simulator};
    use fastsim_isa::{Asm, Reg};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("fastsim-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn warm_snapshot(iters: i32) -> WarmCacheSnapshot {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, iters);
        a.label("l");
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "l");
        a.halt();
        let program = a.assemble().unwrap();
        let mut sim = Simulator::new(&program, Mode::fast()).unwrap();
        sim.run_to_completion().unwrap();
        sim.take_warm_cache().expect("fast mode").freeze()
    }

    #[test]
    fn save_load_round_trip_preserves_the_snapshot() {
        let dir = temp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = warm_snapshot(40);
        let saved = store.save(&snap).unwrap();
        assert_eq!(saved.generation, 1);
        assert!(saved.bytes > 0);

        let (loaded, rejected) = store.load_latest(snap.fingerprint()).unwrap();
        assert!(rejected.is_empty());
        let loaded = loaded.expect("just saved");
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.snapshot.fingerprint(), snap.fingerprint());
        assert_eq!(loaded.snapshot.config_count(), snap.config_count());
        assert_eq!(loaded.snapshot.node_count(), snap.node_count());
        // Byte-for-byte: re-encoding the loaded snapshot reproduces the
        // saved file exactly.
        assert_eq!(loaded.snapshot.encode(), snap.encode());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generations_increment_and_load_prefers_newest() {
        let dir = temp_dir("generations");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = warm_snapshot(40);
        assert_eq!(store.save(&snap).unwrap().generation, 1);
        assert_eq!(store.save(&snap).unwrap().generation, 2);
        assert_eq!(store.save(&snap).unwrap().generation, 3);
        assert_eq!(store.generations(snap.fingerprint()).unwrap(), vec![1, 2, 3]);
        let (loaded, _) = store.load_latest(snap.fingerprint()).unwrap();
        assert_eq!(loaded.unwrap().generation, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = warm_snapshot(40);
        store.save(&snap).unwrap();
        let newest = store.save(&snap).unwrap();
        // Damage the newest file's payload.
        let mut bytes = fs::read(&newest.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&newest.path, &bytes).unwrap();

        let (loaded, rejected) = store.load_latest(snap.fingerprint()).unwrap();
        assert_eq!(loaded.expect("older generation survives").generation, 1);
        assert_eq!(rejected.len(), 1);
        assert!(
            matches!(rejected[0].cause, RejectCause::Decode(_)),
            "typed decode rejection, got {:?}",
            rejected[0].cause
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_group_directory_is_rejected_not_adopted() {
        let dir = temp_dir("wronggroup");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = warm_snapshot(40);
        let saved = store.save(&snap).unwrap();
        // Smuggle the file into another fingerprint's directory.
        let alien_fp = snap.fingerprint() ^ 1;
        let alien_dir = dir.join(format!("{alien_fp:016x}"));
        fs::create_dir_all(&alien_dir).unwrap();
        fs::copy(&saved.path, alien_dir.join("gen-00000001.snap")).unwrap();

        let (loaded, rejected) = store.load_latest(alien_fp).unwrap();
        assert!(loaded.is_none());
        assert_eq!(rejected.len(), 1);
        assert!(matches!(
            rejected[0].cause,
            RejectCause::Decode(SnapshotDecodeError::FingerprintMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_never_deletes_the_newest_generation() {
        let dir = temp_dir("prune");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = warm_snapshot(40);
        for _ in 0..5 {
            store.save(&snap).unwrap();
        }
        // keep = 0 clamps to 1: the newest generation must survive even
        // when the budget says "keep nothing".
        let report = store.prune(0).unwrap();
        assert_eq!(report, PruneReport { removed: 4, kept: 1 });
        assert_eq!(store.generations(snap.fingerprint()).unwrap(), vec![5]);
        // Pruning again is a no-op.
        assert_eq!(store.prune(2).unwrap(), PruneReport { removed: 0, kept: 1 });
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_landing_during_prune_survives() {
        let dir = temp_dir("prunerace");
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = warm_snapshot(40);
        for _ in 0..4 {
            store.save(&snap).unwrap();
        }
        // Interleave the race: the plan is computed, then a persist lands
        // (publishing generation 5 via tmp+rename), then the plan executes.
        let (plan, _) = store.plan_prune(1).unwrap();
        let racing = store.save(&snap).unwrap();
        assert_eq!(racing.generation, 5);
        let removed = store.execute_prune(&plan).unwrap();
        assert_eq!(removed, 3, "generations 1..=3 pruned");
        // Both the plan-time newest (4) and the racing save (5) survive.
        assert_eq!(store.generations(snap.fingerprint()).unwrap(), vec![4, 5]);
        let (loaded, rejected) = store.load_latest(snap.fingerprint()).unwrap();
        assert!(rejected.is_empty());
        assert_eq!(loaded.unwrap().generation, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_all_scans_every_fingerprint_and_ignores_tmp() {
        let dir = temp_dir("loadall");
        let store = SnapshotStore::open(&dir).unwrap();
        let a = warm_snapshot(40);
        let b = warm_snapshot(60); // different program → different fingerprint
        assert_ne!(a.fingerprint(), b.fingerprint());
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        // A leftover temporary from a crashed save must be ignored by
        // scans and cleaned by sweep_tmp.
        let orphan = dir.join(format!("{:016x}", a.fingerprint())).join(".tmp-gen-dead");
        fs::write(&orphan, b"half-written").unwrap();

        let report = store.load_all().unwrap();
        assert_eq!(report.loaded.len(), 2);
        assert!(report.rejected.is_empty());
        let fps: Vec<u64> = report.loaded.iter().map(|l| l.snapshot.fingerprint()).collect();
        assert!(fps.contains(&a.fingerprint()) && fps.contains(&b.fingerprint()));
        assert_eq!(store.sweep_tmp().unwrap(), 1);
        assert!(!orphan.exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
