//! # fastsim-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5). One binary per artifact:
//!
//! | Binary     | Paper artifact |
//! |------------|----------------|
//! | `table1`   | Table 1 — processor model parameters |
//! | `table2`   | Table 2 — SlowSim/FastSim slowdowns and memoization speedup |
//! | `table3`   | Table 3 — cycles, instructions, Kinsts/sec vs the baseline |
//! | `table4`   | Table 4 — detailed vs replayed instructions |
//! | `table5`   | Table 5 — memoization measurements |
//! | `figure7`  | Figure 7 — speedup vs p-action cache size (flush policy) |
//! | `gc_study` | §4.3/§5 — garbage collection vs flush-on-full |
//! | `make_tables` | everything above in one run |
//!
//! Each binary accepts `--insts N` (dynamic instructions per workload,
//! default 2,000,000) and `--filter SUBSTR` (run matching workloads only).
//! Run them in release mode; absolute times in debug builds are
//! meaningless.
//!
//! The `benches/` directory holds self-timed micro-harnesses (see
//! [`timing`]) over the same scenarios for `cargo bench`; they use no
//! crates.io dependencies, so benchmarking works fully offline.

use fastsim_baseline::BaselineSim;
use fastsim_core::{HierarchyConfig, Mode, Policy, SimStats, Simulator, UArchConfig};
use fastsim_emu::FuncEmulator;
use fastsim_isa::Program;
use fastsim_memo::MemoStats;
use fastsim_workloads::Workload;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Command-line options shared by the table binaries.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Target dynamic instructions per workload.
    pub insts: u64,
    /// Only run workloads whose name contains this substring.
    pub filter: Option<String>,
}

impl RunSpec {
    /// Parses `--insts N` and `--filter S` from `std::env::args`.
    pub fn from_args() -> RunSpec {
        let mut spec = RunSpec { insts: 2_000_000, filter: None };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--insts" => {
                    spec.insts = args
                        .next()
                        .and_then(|v| v.replace('_', "").parse().ok())
                        .unwrap_or_else(|| panic!("--insts needs a number"));
                }
                "--filter" => spec.filter = args.next(),
                other => panic!("unknown argument `{other}` (expected --insts/--filter)"),
            }
        }
        spec
    }

    /// The workloads selected by the filter.
    pub fn workloads(&self) -> Vec<Workload> {
        fastsim_workloads::all()
            .into_iter()
            .filter(|w| self.filter.as_deref().is_none_or(|f| w.name.contains(f)))
            .collect()
    }
}

/// Wall-clock measurement of one simulator run.
#[derive(Clone, Debug)]
pub struct Timed<T> {
    /// The simulator's results.
    pub result: T,
    /// Host time consumed.
    pub time: Duration,
}

/// Runs the bare functional emulator (the paper's "Program" column
/// surrogate). Returns instruction count.
pub fn run_func(program: &Program) -> Timed<u64> {
    let prog = Rc::new(program.predecode().expect("program decodes"));
    let mut emu = FuncEmulator::new(prog, program);
    let start = Instant::now();
    emu.run(u64::MAX);
    let time = start.elapsed();
    assert!(emu.halted(), "workload must halt");
    Timed { result: emu.insts(), time }
}

/// Simulation results needed by the tables.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// Engine statistics.
    pub stats: SimStats,
    /// Memoization statistics (FastSim modes only).
    pub memo: Option<MemoStats>,
}

/// Runs a [`Simulator`] in the given mode to completion.
pub fn run_sim(program: &Program, mode: Mode) -> Timed<SimRun> {
    let mut sim = Simulator::new(program, mode).expect("simulator builds");
    let start = Instant::now();
    sim.run_to_completion().expect("simulation completes");
    let time = start.elapsed();
    Timed { result: SimRun { stats: *sim.stats(), memo: sim.memo_stats().copied() }, time }
}

/// Runs a [`Simulator`] to completion under an explicit memory hierarchy
/// (Table 1 µ-architecture parameters otherwise).
pub fn run_sim_hier(program: &Program, mode: Mode, hier: &HierarchyConfig) -> Timed<SimRun> {
    let mut sim = Simulator::with_configs(program, mode, UArchConfig::table1(), hier.clone())
        .expect("simulator builds");
    let start = Instant::now();
    sim.run_to_completion().expect("simulation completes");
    let time = start.elapsed();
    Timed { result: SimRun { stats: *sim.stats(), memo: sim.memo_stats().copied() }, time }
}

/// Runs the SimpleScalar-like baseline. Returns (cycles, retired).
pub fn run_baseline(program: &Program) -> Timed<(u64, u64)> {
    let mut sim = BaselineSim::new(program).expect("baseline builds");
    let start = Instant::now();
    sim.run(u64::MAX);
    let time = start.elapsed();
    assert!(sim.finished(), "baseline must finish");
    Timed { result: (sim.stats().cycles, sim.stats().retired_insts), time }
}

/// Thousands of simulated instructions per host second.
pub fn kinsts_per_sec(insts: u64, time: Duration) -> f64 {
    insts as f64 / time.as_secs_f64() / 1e3
}

/// Slowdown of a simulator run relative to bare functional execution.
pub fn slowdown(sim_time: Duration, func_time: Duration) -> f64 {
    sim_time.as_secs_f64() / func_time.as_secs_f64().max(1e-9)
}

/// Prints the standard header for a regenerated artifact.
pub fn banner(title: &str, spec: &RunSpec) {
    println!();
    println!("=== {title} ===");
    println!(
        "target insts/workload: {}{}",
        spec.insts,
        if cfg!(debug_assertions) {
            "  [WARNING: debug build — times are not meaningful]"
        } else {
            ""
        }
    );
    println!();
}

/// A FastSim run under a specific p-action cache policy.
pub fn run_fast_with_policy(program: &Program, policy: Policy) -> Timed<SimRun> {
    run_sim(program, Mode::Fast { policy })
}

/// Self-contained median-of-samples micro-timing for the `benches/`
/// harnesses. Replaces the former Criterion dependency so `cargo bench`
/// runs fully offline (the tier-1 policy: no network-fetched dev-deps).
pub mod timing {
    use std::time::{Duration, Instant};

    /// One benchmark measurement.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        /// Benchmark label.
        pub name: String,
        /// Median wall time of the samples.
        pub median: Duration,
        /// Samples taken.
        pub samples: usize,
    }

    /// Times `samples` runs of `f` (after one untimed warmup) and returns
    /// the median, printing one aligned report line.
    pub fn measure<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
        assert!(samples > 0);
        std::hint::black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!("{name:<44} {:>12.3} ms  ({samples} samples)", median.as_secs_f64() * 1e3);
        Measurement { name: name.to_string(), median, samples }
    }

    /// Times `iters` iterations of `f` per sample and reports the median
    /// *per-iteration* time in nanoseconds (for sub-microsecond paths).
    pub fn measure_per_iter<T>(
        name: &str,
        samples: usize,
        iters: u64,
        mut f: impl FnMut() -> T,
    ) -> Measurement {
        assert!(samples > 0 && iters > 0);
        std::hint::black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!("{name:<44} {:>12.1} ns/iter ({samples} samples)", median.as_nanos());
        Measurement { name: name.to_string(), median, samples }
    }

    /// Prints a section banner for a bench harness.
    pub fn banner(title: &str) {
        println!();
        println!("=== {title} ===");
        if cfg!(debug_assertions) {
            println!("[WARNING: debug build — times are not meaningful]");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_round_trip() {
        let w = fastsim_workloads::by_name("compress").unwrap();
        let p = w.program_for_insts(20_000);
        let func = run_func(&p);
        let fast = run_sim(&p, Mode::fast());
        let slow = run_sim(&p, Mode::Slow);
        let base = run_baseline(&p);
        assert_eq!(fast.result.stats.cycles, slow.result.stats.cycles);
        assert_eq!(fast.result.stats.retired_insts, func.result);
        assert_eq!(base.result.1, func.result);
        assert!(fast.result.memo.is_some());
        assert!(slow.result.memo.is_none());
        assert!(kinsts_per_sec(1000, Duration::from_secs(1)) == 1.0);
    }

    #[test]
    fn spec_filters() {
        let spec = RunSpec { insts: 1, filter: Some("mgrid".into()) };
        let ws = spec.workloads();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "107.mgrid");
        let all = RunSpec { insts: 1, filter: None }.workloads();
        assert_eq!(all.len(), 18);
    }
}
