//! Regenerates Table 2: per benchmark, the time of the uninstrumented
//! program (bare functional emulation, our "Program" surrogate), the
//! slowdown of SlowSim (memoization off) and FastSim (memoization on)
//! relative to it, and the memoization speedup (Slow/Fast) — the paper
//! reports 4.9–11.9×.

use fastsim_bench::{banner, run_func, run_sim, slowdown, RunSpec};
use fastsim_core::Mode;

fn main() {
    let spec = RunSpec::from_args();
    banner("Table 2: Performance of the FastSim simulator", &spec);
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "Benchmark", "Program(s)", "SlowSim/", "FastSim/", "Slow/Fast"
    );
    let mut ratios = Vec::new();
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let func = run_func(&program);
        let slow = run_sim(&program, Mode::Slow);
        let fast = run_sim(&program, Mode::fast());
        assert_eq!(
            slow.result.stats.cycles, fast.result.stats.cycles,
            "{}: memoization must not change the cycle count",
            w.name
        );
        let s_slow = slowdown(slow.time, func.time);
        let s_fast = slowdown(fast.time, func.time);
        let ratio = slow.time.as_secs_f64() / fast.time.as_secs_f64();
        ratios.push(ratio);
        println!(
            "{:<14} {:>10.3} {:>12.1} {:>12.1} {:>12.1}",
            w.name,
            func.time.as_secs_f64(),
            s_slow,
            s_fast,
            ratio
        );
    }
    let (min, max) = ratios
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    println!(
        "\nMemoization speedup (Slow/Fast): {min:.1}x – {max:.1}x  (paper: 4.9x – 11.9x)"
    );
}
