//! Regenerates Table 4: instructions simulated by detailed simulation vs
//! replayed by fast-forwarding, and the detailed fraction (the paper
//! reports ≤0.311%, usually ≤0.1%, at SPEC-scale instruction counts).

use fastsim_bench::{banner, run_sim, RunSpec};
use fastsim_core::Mode;

fn main() {
    let spec = RunSpec::from_args();
    banner("Table 4: detailed vs replayed instructions", &spec);
    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "Benchmark", "Detailed", "Replay", "Detailed/Total"
    );
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let fast = run_sim(&program, Mode::fast());
        let s = fast.result.stats;
        println!(
            "{:<14} {:>14} {:>14} {:>11.3}%",
            w.name,
            s.detailed_insts,
            s.replayed_insts,
            s.detailed_fraction() * 100.0
        );
    }
    println!("\n(The detailed fraction shrinks with run length; the paper's runs");
    println!(" were 4e7–1.6e10 instructions. Increase --insts to approach them.)");
}
