//! `replay_hotpath` — node-by-node vs. trace-compiled replay throughput.
//!
//! PR 2 made configuration *lookup* cheap; this benchmark measures the
//! other half of warm-run cost: *replaying* the memoized action chains.
//! It compares the two replay execution strategies on every workload:
//!
//! * **node** — node-at-a-time chain walking (trace compilation disabled
//!   via `hotness = u32::MAX`): per action, a `kind` fetch, an
//!   `ActionKind` match and a successor lookup;
//! * **trace** — trace-compiled segments (`hotness = 0`): hot chains
//!   flattened into linear op arrays, advance runs pre-aggregated,
//!   outcome dispatches inlined on their hot edge.
//!
//! Two measurements per workload:
//!
//! * `nav_*` — the replay *navigation* microbench: both strategies walk
//!   the exact chains recorded from the workload (hot-edge path),
//!   performing the engine's per-action cache work (accessed marking,
//!   anchor reads, successor resolution / op scanning) with the
//!   environment factored out. This isolates what trace compilation
//!   accelerates; `nav_speedup` is the headline replay-throughput ratio.
//! * `warm_*` — end-to-end warm runs (emulator + cache simulator
//!   included), with `SimStats` asserted bit-identical between the two
//!   strategies on every workload. The trace strategy is measured at
//!   serving steady state: a warm-up run compiles segments, the cache is
//!   refrozen (compiled segments survive the freeze), and the measured
//!   runs thaw those segments — `segments_thawed` > 0, near-zero
//!   recompilation — with superblock chaining collapsing `bailouts`
//!   into `chained_exits`.
//!
//! Writes `BENCH_replay.json` (schema `fastsim-replay-hotpath/v2`). Usage:
//! `replay_hotpath [--insts N] [--filter SUBSTR] [--out PATH]
//! [--hierarchy PRESET]`.

use fastsim_core::{
    HierarchyConfig, LevelStats, Mode, SimStats, Simulator, UArchConfig, WarmCacheSnapshot,
};
use fastsim_isa::Program;
use fastsim_memo::{
    ActionKind, PActionCache, TouchedKind, TraceOp, TraceSegment, DEFAULT_HOTNESS_THRESHOLD,
};
use fastsim_workloads::Workload;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Timing samples per measurement (median reported).
const SAMPLES: usize = 7;
/// Logical actions walked per navigation sample.
const NAV_ACTIONS: u64 = 2_000_000;

struct Args {
    insts: u64,
    filter: Option<String>,
    out: String,
    hierarchy: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        insts: 200_000,
        filter: None,
        out: "BENCH_replay.json".into(),
        hierarchy: "table1".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--insts" => {
                parsed.insts = args
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .unwrap_or_else(|| panic!("--insts needs a number"));
            }
            "--filter" => parsed.filter = args.next(),
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            "--hierarchy" => parsed.hierarchy = args.next().expect("--hierarchy needs a preset"),
            other => panic!(
                "unknown argument `{other}` (expected --insts/--filter/--out/--hierarchy)"
            ),
        }
    }
    parsed
}

struct Row {
    name: String,
    nav_node_aps: f64,
    nav_trace_aps: f64,
    nav_speedup: f64,
    warm_node_ms: f64,
    warm_trace_ms: f64,
    warm_speedup: f64,
    replayed_actions: u64,
    segments_entered: u64,
    segments_compiled: u64,
    bailouts: u64,
    trace_ops: u64,
    chain_follows: u64,
    chained_exits: u64,
    segments_thawed: u64,
    level_stats: Vec<LevelStats>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn geomean(xs: impl Iterator<Item = f64>, n: usize) -> f64 {
    (xs.map(|x| x.max(1e-12).ln()).sum::<f64>() / n.max(1) as f64).exp()
}

/// First configuration head whose chain compiles to a trace segment.
fn primary_head(pc: &mut PActionCache) -> (u32, Arc<TraceSegment>) {
    for id in 0..pc.node_count() as u32 {
        if pc.is_config_head(id) {
            if let Some(seg) = pc.trace_enter(id) {
                return (id, seg);
            }
        }
    }
    panic!("no compilable chain in the recorded cache");
}

/// Node-at-a-time navigation: the engine's per-action cache work (config
/// check, kind fetch, match, successor resolution with accessed marking),
/// hot-edge path, environment factored out. Returns actions/sec.
fn nav_node(pc: &mut PActionCache, start: u32) -> f64 {
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut cur = start;
            let mut actions = 0u64;
            let mut cycles = 0u64;
            let mut anchor: Vec<u8> = Vec::new();
            let began = Instant::now();
            while actions < NAV_ACTIONS {
                // Crossing bookkeeping: node-at-a-time replay copies the
                // configuration bytes into the fallback anchor at every
                // crossing.
                if pc.is_config_head(cur) {
                    let cfg = pc.config_at(cur).expect("config head");
                    anchor.clear();
                    anchor.extend_from_slice(cfg);
                }
                actions += 1;
                match pc.kind(cur) {
                    ActionKind::Advance { cycles: c, .. } => {
                        cycles += u64::from(c);
                        cur = pc.advance(cur).unwrap_or(start);
                    }
                    ActionKind::IssueStore { .. }
                    | ActionKind::CancelLoad { .. }
                    | ActionKind::Rollback { .. } => {
                        cur = pc.advance(cur).unwrap_or(start);
                    }
                    ActionKind::FetchRecord
                    | ActionKind::IssueLoad { .. }
                    | ActionKind::PollLoad { .. } => {
                        let edges = pc.outcome_edges(cur);
                        cur = match edges.first() {
                            Some(&(key, _)) => pc.branch_to(cur, key).expect("hot edge"),
                            None => start,
                        };
                    }
                    ActionKind::Finish => cur = start,
                }
            }
            black_box((cycles, &anchor));
            actions as f64 / began.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

/// Trace-compiled navigation: the segment executor's cache work (linear
/// op scan, bulk-aggregated marking, inline hot dispatch), environment
/// factored out. Returns actions/sec.
fn nav_trace(pc: &mut PActionCache, seg0: &Arc<TraceSegment>) -> f64 {
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut seg = Arc::clone(seg0);
            let mut ip = 0usize;
            let mut actions = 0u64;
            let mut cycles = 0u64;
            let mut anchor: Vec<u8> = Vec::new();
            // The anchor-bytes copy is deferred to segment exit, exactly
            // as the engine's segment executor defers it.
            let mut last_anchor = 0u32;
            let began = Instant::now();
            while actions < NAV_ACTIONS {
                match &seg.ops[ip] {
                    TraceOp::Bulk { cycles: c, count, touched, anchored, .. } => {
                        match touched.kind() {
                            TouchedKind::Span(first) => {
                                if *anchored {
                                    last_anchor = first;
                                }
                                pc.mark_accessed_span(first, *count)
                            }
                            TouchedKind::List(start, len) => {
                                if *anchored {
                                    last_anchor = seg.touched[start as usize];
                                }
                                for &t in seg.touched_slice((start, len)) {
                                    pc.mark_accessed(t);
                                }
                            }
                        }
                        cycles += u64::from(*c);
                        actions += u64::from(*count);
                        ip += 1;
                    }
                    TraceOp::IssueStore { node, anchored, .. }
                    | TraceOp::CancelLoad { node, anchored, .. }
                    | TraceOp::Rollback { node, anchored, .. } => {
                        if *anchored {
                            last_anchor = *node;
                        }
                        pc.mark_accessed(*node);
                        actions += 1;
                        ip += 1;
                    }
                    TraceOp::Fetch { node, edges, anchored }
                    | TraceOp::IssueLoad { node, edges, anchored, .. }
                    | TraceOp::PollLoad { node, edges, anchored, .. } => {
                        if *anchored {
                            last_anchor = *node;
                        }
                        pc.mark_accessed(*node);
                        actions += 1;
                        black_box(&seg.edges_slice(*edges)[0]);
                        ip += 1;
                    }
                    TraceOp::Finish { node, anchored } => {
                        if *anchored {
                            last_anchor = *node;
                        }
                        pc.mark_accessed(*node);
                        actions += 1;
                        let cfg = pc.config_at(last_anchor).expect("anchor");
                        anchor.clear();
                        anchor.extend_from_slice(cfg);
                        seg = Arc::clone(seg0);
                        ip = 0;
                    }
                    TraceOp::Cut { node } => {
                        let node = *node;
                        let cfg = pc.config_at(last_anchor).expect("anchor");
                        anchor.clear();
                        anchor.extend_from_slice(cfg);
                        seg = if pc.is_config_head(node) {
                            pc.trace_enter(node).unwrap_or_else(|| Arc::clone(seg0))
                        } else {
                            Arc::clone(seg0)
                        };
                        ip = 0;
                    }
                    TraceOp::Jump { op, .. } => ip = *op as usize,
                }
            }
            black_box((cycles, &anchor));
            actions as f64 / began.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

/// One warm run at the given hotness threshold. Only the simulation loop
/// is timed — simulator construction (the arena thaw) is identical in
/// both modes and would just add noise.
fn warm_run(
    program: &Program,
    snap: &WarmCacheSnapshot,
    hier: &HierarchyConfig,
    hotness: u32,
) -> (f64, Simulator) {
    let mut sim =
        Simulator::with_warm_snapshot(program, snap, UArchConfig::table1(), hier.clone())
            .expect("warm builds");
    sim.set_trace_hotness(hotness);
    let began = Instant::now();
    sim.run_to_completion().expect("warm completes");
    (began.elapsed().as_secs_f64(), sim)
}

fn run_workload(w: &Workload, insts: u64, hier: &HierarchyConfig) -> Row {
    let program = w.program_for_insts(insts);

    // Record the chains once, trace-free, and freeze them.
    let mut cold =
        Simulator::with_configs(&program, Mode::fast(), UArchConfig::table1(), hier.clone())
            .expect("fast builds");
    cold.set_trace_hotness(u32::MAX);
    cold.run_to_completion().expect("cold completes");
    let snap = cold.take_warm_cache().expect("fast mode").freeze();

    // Navigation microbench over the recorded chains.
    let mut node_pc = PActionCache::from_snapshot(snap.cache());
    node_pc.set_hotness_threshold(u32::MAX);
    let mut trace_pc = PActionCache::from_snapshot(snap.cache());
    trace_pc.set_hotness_threshold(0);
    let (start, seg0) = primary_head(&mut trace_pc);
    if std::env::var_os("REPLAY_HOTPATH_DEBUG").is_some() {
        let mut hist = std::collections::BTreeMap::new();
        for op in &seg0.ops {
            let k = match op {
                TraceOp::Bulk { count, .. } => {
                    *hist.entry("bulk_actions").or_insert(0u64) += u64::from(*count);
                    "bulk"
                }
                TraceOp::IssueStore { .. } => "store",
                TraceOp::CancelLoad { .. } => "cancel",
                TraceOp::Rollback { .. } => "rollback",
                TraceOp::Fetch { .. } => "fetch",
                TraceOp::IssueLoad { .. } => "load",
                TraceOp::PollLoad { .. } => "poll",
                TraceOp::Finish { .. } => "finish",
                TraceOp::Cut { .. } => "cut",
                TraceOp::Jump { .. } => "jump",
            };
            *hist.entry(k).or_insert(0) += 1;
        }
        eprintln!(
            "[debug] {}: seg0 ops={} logical={} hist={:?} op_size={}B",
            w.name,
            seg0.ops.len(),
            seg0.logical_actions(),
            hist,
            std::mem::size_of::<TraceOp>(),
        );
    }
    let nav_node_aps = nav_node(&mut node_pc, start);
    let nav_trace_aps = nav_trace(&mut trace_pc, &seg0);

    // End-to-end warm runs, both strategies, SimStats asserted identical.
    // The node baseline replays from the trace-free recording. The trace
    // strategy is measured at serving steady state: one warm-up run
    // compiles segments, its cache is refrozen (segments survive the
    // freeze), and the measured runs thaw compiled segments — no
    // recompilation — with superblock chaining on. That is exactly the
    // state a `BatchDriver` refreeze or a served warm cache reaches after
    // its first merge cycle.
    let (_, warmup) = warm_run(&program, &snap, hier, DEFAULT_HOTNESS_THRESHOLD);
    let warm_snap = warmup.take_warm_cache().expect("fast mode").freeze();
    assert!(
        warm_snap.cache().trace_count() > 0,
        "{}: warm-up run must leave compiled segments in the refrozen snapshot",
        w.name
    );
    // Memo counters are cumulative across the snapshot lineage; subtract
    // the refrozen snapshot's baseline so the row reports this run only.
    let memo_base = *warm_snap.cache().stats();
    let mut node_stats: Option<SimStats> = None;
    let mut trace_stats: Option<SimStats> = None;
    let mut node_times = Vec::new();
    let mut trace_times = Vec::new();
    let mut memo = None;
    let mut node_levels: Vec<LevelStats> = Vec::new();
    let mut trace_levels: Vec<LevelStats> = Vec::new();
    for _ in 0..SAMPLES {
        let (t, sim) = warm_run(&program, &snap, hier, u32::MAX);
        node_times.push(t * 1e3);
        node_stats = Some(*sim.stats());
        node_levels = sim.cache_level_stats().to_vec();
        let (t, sim) = warm_run(&program, &warm_snap, hier, DEFAULT_HOTNESS_THRESHOLD);
        trace_times.push(t * 1e3);
        trace_stats = Some(*sim.stats());
        trace_levels = sim.cache_level_stats().to_vec();
        memo = Some(*sim.memo_stats().expect("fast mode"));
    }
    let (node_stats, trace_stats) = (node_stats.unwrap(), trace_stats.unwrap());
    assert_eq!(
        trace_stats, node_stats,
        "{}: trace-compiled warm run must be bit-identical",
        w.name
    );
    assert_eq!(
        trace_levels, node_levels,
        "{}: per-level cache stats must be bit-identical across replay strategies",
        w.name
    );
    let memo = memo.unwrap();
    let warm_node_ms = median(node_times);
    let warm_trace_ms = median(trace_times);

    Row {
        name: w.name.to_string(),
        nav_node_aps,
        nav_trace_aps,
        nav_speedup: nav_trace_aps / nav_node_aps.max(1e-12),
        warm_node_ms,
        warm_trace_ms,
        warm_speedup: warm_node_ms / warm_trace_ms.max(1e-12),
        replayed_actions: node_stats.replayed_actions,
        segments_entered: memo.replay_segments_entered - memo_base.replay_segments_entered,
        segments_compiled: memo.trace_segments_compiled - memo_base.trace_segments_compiled,
        bailouts: memo.replay_bailouts - memo_base.replay_bailouts,
        trace_ops: memo.replay_trace_ops - memo_base.replay_trace_ops,
        chain_follows: memo.chain_follows - memo_base.chain_follows,
        chained_exits: memo.chained_exits - memo_base.chained_exits,
        segments_thawed: memo.segments_thawed - memo_base.segments_thawed,
        level_stats: trace_levels,
    }
}

fn main() {
    let args = parse_args();
    let hier = HierarchyConfig::preset(&args.hierarchy).unwrap_or_else(|| {
        panic!(
            "unknown hierarchy preset `{}` (known: {})",
            args.hierarchy,
            HierarchyConfig::preset_names().join(", ")
        )
    });
    let workloads: Vec<Workload> = fastsim_workloads::all()
        .into_iter()
        .filter(|w| args.filter.as_deref().is_none_or(|f| w.name.contains(f)))
        .collect();
    assert!(!workloads.is_empty(), "filter matched no workloads");

    println!();
    println!("=== replay_hotpath: node-by-node vs trace-compiled replay ===");
    println!(
        "hierarchy: {} ({} levels), trace op size: {} B",
        args.hierarchy,
        hier.depth(),
        std::mem::size_of::<TraceOp>()
    );
    println!("target insts/workload: {}{}", args.insts, if cfg!(debug_assertions) {
        "  [WARNING: debug build — times are not meaningful]"
    } else {
        ""
    });
    println!();
    println!(
        "{:<14} {:>13} {:>13} {:>8} {:>10} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "workload", "nav node/s", "nav trace/s", "nav x", "node ms", "trace ms", "warm x",
        "segments", "bailouts", "chained", "thawed"
    );

    let rows: Vec<Row> = workloads
        .iter()
        .map(|w| {
            let r = run_workload(w, args.insts, &hier);
            println!(
                "{:<14} {:>13.0} {:>13.0} {:>8.2} {:>10.1} {:>10.1} {:>8.2} {:>9} {:>9} {:>9} {:>9}",
                r.name, r.nav_node_aps, r.nav_trace_aps, r.nav_speedup, r.warm_node_ms,
                r.warm_trace_ms, r.warm_speedup, r.segments_entered, r.bailouts,
                r.chained_exits, r.segments_thawed
            );
            let levels: Vec<String> = r
                .level_stats
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let total = (l.hits + l.misses).max(1);
                    format!(
                        "L{i} {:.1}% hit ({} miss, {} stall, {} wb)",
                        l.hits as f64 / total as f64 * 100.0,
                        l.misses,
                        l.mshr_stall_cycles,
                        l.writebacks
                    )
                })
                .collect();
            println!("{:<14} {}", "", levels.join(" | "));
            r
        })
        .collect();

    let n = rows.len();
    let nav_node_g = geomean(rows.iter().map(|r| r.nav_node_aps), n);
    let nav_trace_g = geomean(rows.iter().map(|r| r.nav_trace_aps), n);
    let nav_speedup_g = geomean(rows.iter().map(|r| r.nav_speedup), n);
    let warm_speedup_g = geomean(rows.iter().map(|r| r.warm_speedup), n);
    println!();
    println!(
        "geomean replay nav {:.0} -> {:.0} actions/s ({:.2}x)   geomean warm end-to-end {:.2}x",
        nav_node_g, nav_trace_g, nav_speedup_g, warm_speedup_g
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"fastsim-replay-hotpath/v2\",");
    let _ = writeln!(json, "  \"insts_per_workload\": {},", args.insts);
    let _ = writeln!(json, "  \"debug_build\": {},", cfg!(debug_assertions));
    let _ = writeln!(json, "  \"hierarchy\": \"{}\",", args.hierarchy);
    let _ = writeln!(json, "  \"trace_op_bytes\": {},", std::mem::size_of::<TraceOp>());
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let cache_levels: Vec<String> = r
            .level_stats
            .iter()
            .enumerate()
            .map(|(lvl, l)| {
                format!(
                    "{{\"level\": {lvl}, \"hits\": {}, \"misses\": {}, \"mshr_stall_cycles\": {}, \"writebacks\": {}}}",
                    l.hits, l.misses, l.mshr_stall_cycles, l.writebacks
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"nav_node_actions_per_sec\": {:.1}, \"nav_trace_actions_per_sec\": {:.1}, \"nav_speedup\": {:.3}, \"warm_node_ms\": {:.2}, \"warm_trace_ms\": {:.2}, \"warm_speedup\": {:.3}, \"replayed_actions\": {}, \"segments_entered\": {}, \"segments_compiled\": {}, \"bailouts\": {}, \"trace_ops\": {}, \"chain_follows\": {}, \"chained_exits\": {}, \"segments_thawed\": {}, \"cache_levels\": [{}], \"stats_identical\": true}}{}",
            r.name,
            r.nav_node_aps,
            r.nav_trace_aps,
            r.nav_speedup,
            r.warm_node_ms,
            r.warm_trace_ms,
            r.warm_speedup,
            r.replayed_actions,
            r.segments_entered,
            r.segments_compiled,
            r.bailouts,
            r.trace_ops,
            r.chain_follows,
            r.chained_exits,
            r.segments_thawed,
            cache_levels.join(", "),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"summary\": {\n");
    let _ = writeln!(json, "    \"workloads\": {},", n);
    let _ = writeln!(json, "    \"nav_node_actions_per_sec_geomean\": {:.1},", nav_node_g);
    let _ = writeln!(json, "    \"nav_trace_actions_per_sec_geomean\": {:.1},", nav_trace_g);
    let _ = writeln!(json, "    \"replay_throughput_speedup_geomean\": {:.3},", nav_speedup_g);
    let _ = writeln!(json, "    \"warm_speedup_geomean\": {:.3}", warm_speedup_g);
    json.push_str("  }\n}\n");
    std::fs::write(&args.out, json).expect("write trajectory file");
    println!("wrote {}", args.out);
}
