//! Regenerates Table 5: memoization measurements — p-action cache size,
//! static configuration/action counts, dynamic actions and cycles per
//! configuration, and replayed chain lengths.

use fastsim_bench::{banner, run_sim, RunSpec};
use fastsim_core::Mode;

fn main() {
    let spec = RunSpec::from_args();
    banner("Table 5: measurements of memoization", &spec);
    println!(
        "{:<14} {:>10} {:>10} {:>11} {:>9} {:>9} {:>11} {:>12}",
        "Benchmark",
        "Cache(KB)",
        "Configs",
        "Actions",
        "Act/Cfg",
        "Cyc/Cfg",
        "ChainAvg",
        "ChainMax"
    );
    let mut int_apc = Vec::new();
    let mut fp_apc = Vec::new();
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let fast = run_sim(&program, Mode::fast());
        let s = fast.result.stats;
        let m = fast.result.memo.expect("fast mode records memo stats");
        let apc = s.actions_per_config();
        if w.fp {
            fp_apc.push(apc / s.cycles_per_config());
        } else {
            int_apc.push(apc / s.cycles_per_config());
        }
        println!(
            "{:<14} {:>10.1} {:>10} {:>11} {:>9.2} {:>9.2} {:>11.1} {:>12}",
            w.name,
            m.peak_bytes as f64 / 1024.0,
            m.static_configs,
            m.static_actions,
            apc,
            s.cycles_per_config(),
            s.avg_chain_len(),
            s.chain_len_max
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nActions per cycle: integer {:.2}, floating-point {:.2}",
        avg(&int_apc),
        avg(&fp_apc)
    );
    println!("(paper: 2.4 integer vs 3.9 FP — FP code keeps more units busy per cycle)");
}
