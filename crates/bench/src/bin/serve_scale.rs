//! `serve_scale` — connection-scaling benchmark for the event-loop server.
//!
//! The point of the readiness-driven serving tier is that connection
//! count is decoupled from thread count: an idle connection is a table
//! entry on the I/O thread, not an OS thread. This benchmark proves it
//! end to end. It starts an in-process server on a private Unix socket,
//! then sweeps tiers of mostly-idle connections (default
//! 64 → 256 → 1024 → 4096 → 8192): each tier parks that many idle
//! clients on the loop and drives a **fixed active core** — one client
//! submitting the same kernel repeatedly with `wait: true` — through the
//! crowd. Per tier it records jobs/sec and the active client's p50/p99
//! end-to-end latency, plus the loop's wakeup/ready-event deltas.
//!
//! The pass criterion (`idle_scaling_ok`) is that the largest tier's p99
//! is no worse than the 64-connection baseline, within a noise tolerance
//! (1.5× ratio or 5 ms absolute, whichever is more forgiving — the
//! machine also runs the workers, so a scheduler hiccup must not fail the
//! sweep spuriously). Tiers that would exceed the process fd limit
//! (each idle connection costs two fds, client and server end) are
//! skipped with a note rather than failing.
//!
//! ```text
//! cargo run --release -p fastsim-bench --bin serve_scale --
//!     [--tiers 64,256,1024,4096,8192] [--rounds N] [--insts N]
//!     [--workers N] [--out BENCH_serve.json]
//! ```
//!
//! Output: a Markdown table plus a machine-readable
//! `fastsim-serve-scale/v1` JSON file (`BENCH_serve.json` by default)
//! that `scripts/ci.sh` smoke-checks on every run.

use fastsim_serve::client::Client;
use fastsim_serve::json::Json;
use fastsim_serve::server::{Listener, ServeConfig, Server, ServerHandle};
use std::fmt::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    tiers: Vec<usize>,
    rounds: usize,
    insts: u64,
    workers: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        tiers: vec![64, 256, 1024, 4096, 8192],
        rounds: 40,
        insts: 20_000,
        workers: 2,
        out: "BENCH_serve.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--tiers" => {
                parsed.tiers = value("--tiers")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--tiers: list of counts"))
                    .collect();
            }
            "--rounds" => parsed.rounds = value("--rounds").parse().expect("--rounds"),
            "--insts" => parsed.insts = value("--insts").parse().expect("--insts"),
            "--workers" => parsed.workers = value("--workers").parse().expect("--workers"),
            "--out" => parsed.out = value("--out"),
            other => panic!("unknown argument `{other}` (expected --tiers/--rounds/--insts/--workers/--out)"),
        }
    }
    assert!(!parsed.tiers.is_empty(), "--tiers must name at least one tier");
    parsed
}

struct TierRow {
    idle: usize,
    held: u64,
    jobs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    loop_wakeups: u64,
    ready_events: u64,
}

/// The soft fd limit from `/proc/self/limits` (no libc in the workspace;
/// the proc file is the zero-dependency way to ask). Falls back to 1024.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            let line = text.lines().find(|l| l.starts_with("Max open files"))?;
            line.split_whitespace().nth(3)?.parse().ok()
        })
        .unwrap_or(1024)
}

fn event_loop_counter(metrics: &Json, key: &str) -> u64 {
    metrics
        .get("event_loop")
        .and_then(|ev| ev.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// One submit-and-wait round of the active core; returns its end-to-end
/// latency. Panics if the served job did not settle `done` — a scaling
/// benchmark on a misbehaving server would be meaningless.
fn active_round(client: &mut Client, insts: u64, round: usize) -> Duration {
    let submit = Json::obj([
        ("op", Json::from("submit")),
        ("kernels", Json::Arr(vec![Json::from("compress")])),
        ("insts", Json::from(insts)),
        ("client", Json::from("active-core")),
        ("wait", Json::Bool(true)),
    ]);
    let start = Instant::now();
    let resp = client.expect_ok(&submit).unwrap_or_else(|e| panic!("round {round}: {e}"));
    let latency = start.elapsed();
    let jobs = resp.get("jobs").and_then(Json::as_arr).expect("jobs array");
    for job in jobs {
        assert_eq!(
            job.get("status").and_then(Json::as_str),
            Some("done"),
            "round {round}: active job must settle done"
        );
    }
    latency
}

fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

fn run_tier(
    handle: &ServerHandle,
    socket: &std::path::Path,
    active: &mut Client,
    idle_count: usize,
    rounds: usize,
    insts: u64,
) -> TierRow {
    // Park the idle herd. Unix-socket connect blocks until the loop
    // accepts, so no readiness dance is needed on the client side.
    let idle: Vec<UnixStream> = (0..idle_count)
        .map(|i| UnixStream::connect(socket).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while (handle.open_connections() as usize) < idle_count {
        assert!(Instant::now() < deadline, "server never accepted the {idle_count}-conn herd");
        std::thread::sleep(Duration::from_millis(2));
    }
    let held = handle.open_connections();

    let before = active.metrics().expect("metrics before tier");
    let mut samples = Vec::with_capacity(rounds);
    let start = Instant::now();
    for round in 0..rounds {
        samples.push(active_round(active, insts, round));
    }
    let elapsed = start.elapsed();
    let after = active.metrics().expect("metrics after tier");

    drop(idle);
    // Let the loop reap the herd before the next tier piles on.
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.open_connections() > 1 {
        assert!(Instant::now() < deadline, "server never reaped the {idle_count}-conn herd");
        std::thread::sleep(Duration::from_millis(2));
    }

    samples.sort();
    TierRow {
        idle: idle_count,
        held,
        jobs_per_sec: rounds as f64 / elapsed.as_secs_f64(),
        p50_us: percentile_us(&samples, 0.50),
        p99_us: percentile_us(&samples, 0.99),
        loop_wakeups: event_loop_counter(&after, "loop_wakeups")
            - event_loop_counter(&before, "loop_wakeups"),
        ready_events: event_loop_counter(&after, "ready_events")
            - event_loop_counter(&before, "ready_events"),
    }
}

fn main() {
    let args = parse_args();
    let socket =
        std::env::temp_dir().join(format!("fastsim_serve_scale_{}.sock", std::process::id()));
    let cfg = ServeConfig { workers: args.workers, ..ServeConfig::default() };
    let handle =
        Server::start(cfg, vec![Listener::unix(&socket).expect("bind scale socket")]);

    println!();
    println!("=== serve_scale: idle-connection scaling of the event-loop server ===");
    println!(
        "active core: submit compress x{} insts, wait:true, {} rounds/tier, {} workers{}",
        args.insts,
        args.rounds,
        args.workers,
        if cfg!(debug_assertions) { "  [WARNING: debug build — times are not meaningful]" } else { "" }
    );

    // Warm the server's caches first so every tier measures steady state
    // (the cold tier would otherwise pay the detailed-simulation cost and
    // dwarf any connection-scaling signal).
    let mut active = Client::connect_unix(&socket).expect("connect active core");
    for round in 0..5 {
        active_round(&mut active, args.insts, round);
    }

    // Each idle connection costs two fds in this process (client end +
    // server end); leave headroom for the workspace's own files.
    let budget = fd_limit().saturating_sub(64) / 2;
    let mut skipped: Vec<usize> = Vec::new();

    println!();
    println!("| idle conns | held | jobs/sec | p50 (us) | p99 (us) | loop wakeups | ready events |");
    println!("|-----------:|-----:|---------:|---------:|---------:|-------------:|-------------:|");
    let mut rows: Vec<TierRow> = Vec::new();
    for &tier in &args.tiers {
        if tier > budget {
            skipped.push(tier);
            continue;
        }
        let row = run_tier(&handle, &socket, &mut active, tier, args.rounds, args.insts);
        println!(
            "| {} | {} | {:.1} | {:.0} | {:.0} | {} | {} |",
            row.idle, row.held, row.jobs_per_sec, row.p50_us, row.p99_us, row.loop_wakeups,
            row.ready_events
        );
        rows.push(row);
    }
    for tier in &skipped {
        println!("(skipped {tier}-conn tier: over the fd budget of {budget} idle conns)");
    }
    assert!(!rows.is_empty(), "every tier was over the fd budget");

    active.shutdown().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_file(&socket);

    // Pass criterion: the biggest crowd must not slow the active client.
    let baseline = &rows[0];
    let top = rows.last().expect("at least one tier");
    let ratio = top.p99_us / baseline.p99_us.max(1e-9);
    let idle_scaling_ok = ratio <= 1.5 || top.p99_us - baseline.p99_us <= 5_000.0;
    println!();
    println!(
        "p99 {} conns {:.0} us vs baseline ({} conns) {:.0} us — ratio {:.3} ({})",
        top.idle,
        top.p99_us,
        baseline.idle,
        baseline.p99_us,
        ratio,
        if idle_scaling_ok { "ok" } else { "REGRESSION" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"fastsim-serve-scale/v1\",");
    let _ = writeln!(json, "  \"debug_build\": {},", cfg!(debug_assertions));
    let _ = writeln!(json, "  \"rounds_per_tier\": {},", args.rounds);
    let _ = writeln!(json, "  \"insts\": {},", args.insts);
    let _ = writeln!(json, "  \"workers\": {},", args.workers);
    let _ = writeln!(json, "  \"kernel\": \"compress\",");
    json.push_str("  \"tiers\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"connections_idle\": {}, \"connections_held\": {}, \"jobs_per_sec\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"loop_wakeups\": {}, \"ready_events\": {}}}{}",
            r.idle,
            r.held,
            r.jobs_per_sec,
            r.p50_us,
            r.p99_us,
            r.loop_wakeups,
            r.ready_events,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"summary\": {\n");
    let _ = writeln!(json, "    \"baseline_connections\": {},", baseline.idle);
    let _ = writeln!(json, "    \"baseline_p99_us\": {:.1},", baseline.p99_us);
    let _ = writeln!(json, "    \"max_connections_held\": {},", top.held);
    let _ = writeln!(json, "    \"max_tier_p99_us\": {:.1},", top.p99_us);
    let _ = writeln!(json, "    \"p99_ratio_max_over_baseline\": {:.4},", ratio);
    let _ = writeln!(
        json,
        "    \"skipped_tiers\": [{}],",
        skipped.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "    \"idle_scaling_ok\": {idle_scaling_ok}");
    json.push_str("  }\n}\n");

    let out = PathBuf::from(&args.out);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());
    assert!(idle_scaling_ok, "idle-connection scaling regressed (see table above)");
}
