//! Regenerates the §4.3/§5 replacement-policy study: flush-on-full vs a
//! copying garbage collector vs a generational collector at the same size
//! limit. The paper's finding — GC performs no better than simply flushing
//! (few collections, ~18% average survival) — is checked here.

use fastsim_bench::{banner, run_fast_with_policy, run_sim, RunSpec};
use fastsim_core::{Mode, Policy};

fn main() {
    let spec = RunSpec::from_args();
    banner("GC study: flush-on-full vs copying vs generational GC", &spec);
    println!(
        "{:<14} {:>9} {:<14} {:>9} {:>8} {:>9} {:>10} {:>9}",
        "Benchmark", "limit", "policy", "time(s)", "speedup", "evictions", "survival", "detailed"
    );
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let slow = run_sim(&program, Mode::Slow);
        let unbounded = run_sim(&program, Mode::fast());
        // Size the limit just under the natural footprint, like the paper
        // ("sized just smaller than the maximum space used").
        let natural = unbounded.result.memo.expect("memo").peak_bytes;
        let limit = (natural / 2).max(2 << 10);
        for (label, policy) in [
            ("flush", Policy::FlushOnFull { limit }),
            ("copying-gc", Policy::CopyingGc { limit }),
            ("generational", Policy::GenerationalGc { limit }),
        ] {
            let run = run_fast_with_policy(&program, policy);
            assert_eq!(run.result.stats.cycles, slow.result.stats.cycles, "{}", w.name);
            let m = run.result.memo.expect("memo");
            let evictions = m.flushes + m.collections;
            let speedup = slow.time.as_secs_f64() / run.time.as_secs_f64();
            println!(
                "{:<14} {:>8.0}K {:<14} {:>9.3} {:>8.1} {:>9} {:>9.0}% {:>9}",
                w.name,
                limit as f64 / 1024.0,
                label,
                run.time.as_secs_f64(),
                speedup,
                evictions,
                m.gc_survival_rate() * 100.0,
                run.result.stats.detailed_insts
            );
        }
    }
    println!("\n(paper: GC is not worth the effort — it performs no better than flushing,");
    println!(" and a copying collector can transiently use up to 2x the limit)");
}
