//! Regenerates Figure 7: memoization speedup (SlowSim time / FastSim time)
//! as the p-action cache is limited with the flush-on-full policy.
//!
//! The paper sweeps absolute sizes 512 KB–256 MB against SPEC-scale runs;
//! our kernels' natural footprints are smaller, so the sweep covers both a
//! set of absolute sizes and each kernel's natural footprint, printing the
//! speedup series per workload (one row per size, CSV-friendly).

use fastsim_bench::{banner, run_fast_with_policy, run_sim, RunSpec};
use fastsim_core::{Mode, Policy};

/// Sweep points in bytes (power-of-two ladder like the paper's axis).
const SIZES: [usize; 9] =
    [2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20];

fn main() {
    let spec = RunSpec::from_args();
    banner("Figure 7: speedup vs p-action cache size (flush-on-full)", &spec);
    print!("{:<14} {:>10}", "Benchmark", "natural");
    for s in SIZES {
        print!(" {:>8}", format!("{}K", s / 1024));
    }
    println!(" {:>9}", "unbounded");
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let slow = run_sim(&program, Mode::Slow);
        let unbounded = run_sim(&program, Mode::fast());
        let natural = unbounded.result.memo.expect("memo stats").peak_bytes;
        print!("{:<14} {:>9.0}K", w.name, natural as f64 / 1024.0);
        for limit in SIZES {
            let fast = run_fast_with_policy(&program, Policy::FlushOnFull { limit });
            assert_eq!(fast.result.stats.cycles, slow.result.stats.cycles, "{}", w.name);
            let speedup = slow.time.as_secs_f64() / fast.time.as_secs_f64();
            print!(" {speedup:>8.1}");
        }
        let speedup = slow.time.as_secs_f64() / unbounded.time.as_secs_f64();
        println!(" {speedup:>9.1}");
    }
    println!("\n(paper: most benchmarks tolerate an order-of-magnitude cache reduction;");
    println!(" ijpeg degrades fastest; go needs the largest cache)");
}
