//! Runs every table/figure binary's logic in one process, producing the
//! full evaluation in the paper's order. Equivalent to running `table1`
//! through `gc_study` individually; see each binary for the description of
//! its artifact.
//!
//! ```text
//! cargo run --release -p fastsim-bench --bin make_tables -- --insts 2000000
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir");
    for bin in [
        "table1", "table2", "table3", "table4", "table5", "figure7", "gc_study",
        "inorder_study", "ablation",
    ] {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(if bin == "table1" { &[][..] } else { &args[..] })
            .status()
            .unwrap_or_else(|e| panic!("run {bin} (build all bins first): {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
