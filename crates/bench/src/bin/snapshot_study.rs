//! `snapshot_study` — the durable warm-cache lifecycle benchmark.
//!
//! Three legs over the same job round, all demanded bit-identical:
//!
//! * **cold** — a fresh [`BatchDriver`], empty caches: the price a fleet
//!   pays every time warmth dies with the process.
//! * **warm (store)** — the cold driver's snapshots are persisted to a
//!   durable [`SnapshotStore`], then a *brand-new* driver adopts them at
//!   boot — the killed-and-restarted-server scenario.
//! * **warm (import)** — the snapshots are shipped as encoded
//!   `fastsim-snapshot/v1` bytes and strict-decoded into another new
//!   driver — the fleet-shipping (`snapshot_export`/`snapshot_import`)
//!   scenario.
//!
//! Reports wall times, memoization hit rates, codec throughput
//! (encode/decode MB/s) and store I/O, then writes a machine-readable
//! `BENCH_snapshot.json` (schema `fastsim-snapshot-study/v1`) so every
//! future PR can be compared against the recorded trajectory. The run
//! fails (nonzero exit) if any leg's simulated results diverge or a
//! warmed leg's hit rate falls below the 0.9 floor `docs/snapshots.md`
//! promises.
//!
//! Usage: `snapshot_study [--insts N] [--workers N] [--replicas N]
//! [--filter SUBSTR] [--out PATH]`.

use fastsim_core::batch::{BatchDriver, BatchJob, BatchReport};
use fastsim_core::{SnapshotStore, WarmCacheSnapshot};
use fastsim_serve::json::Json;
use fastsim_workloads::Manifest;
use std::collections::BTreeMap;
use std::time::Instant;

/// The hit-rate floor a warmed leg must clear — the same contract the
/// serve-layer restart test and `docs/snapshots.md` hold the store to.
const WARM_HIT_RATE_FLOOR: f64 = 0.9;

struct Args {
    insts: u64,
    workers: usize,
    replicas: usize,
    filter: Option<String>,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        insts: 100_000,
        workers: 4,
        replicas: 2,
        filter: None,
        out: "BENCH_snapshot.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.replace('_', "").parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match arg.as_str() {
            "--insts" => parsed.insts = num("--insts"),
            "--workers" => parsed.workers = num("--workers") as usize,
            "--replicas" => parsed.replicas = num("--replicas") as usize,
            "--filter" => parsed.filter = args.next(),
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown argument `{other}` (expected --insts/--workers/--replicas/--filter/--out)"
            ),
        }
    }
    parsed
}

/// `name -> deterministic result fields`, the cross-leg identity key.
fn result_map(report: &BatchReport) -> BTreeMap<String, Vec<u64>> {
    report
        .jobs
        .iter()
        .map(|j| {
            (
                j.name.clone(),
                vec![
                    j.stats.cycles,
                    j.stats.retired_insts,
                    j.cache_stats.loads,
                    j.cache_stats.stores,
                    j.cache_stats.l1_misses,
                    j.cache_stats.writebacks,
                ],
            )
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let mut manifest = Manifest::mixed(args.insts).replicated(args.replicas);
    if let Some(f) = &args.filter {
        manifest = manifest.filtered(f);
    }
    assert!(!manifest.is_empty(), "filter matched no jobs");
    let jobs: Vec<BatchJob> = manifest
        .into_jobs()
        .into_iter()
        .map(|j| BatchJob::new(j.name, j.program))
        .collect();
    let mut fingerprints: Vec<u64> = jobs.iter().map(|j| j.fingerprint()).collect();
    fingerprints.sort_unstable();
    fingerprints.dedup();

    println!(
        "# snapshot_study: {} jobs ({} groups), {} insts, {} workers",
        jobs.len(),
        fingerprints.len(),
        args.insts,
        args.workers
    );
    if cfg!(debug_assertions) {
        println!("# WARNING: debug build — times are not meaningful");
    }

    // Leg 1: cold — the warmth this study will make durable.
    let mut cold_driver = BatchDriver::new(args.workers);
    let t = Instant::now();
    let cold = cold_driver.run_round(&jobs).expect("cold round");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    // Persist every group to a scratch store (what a serving daemon does
    // at each re-freeze), timing the save side.
    let store_dir =
        std::env::temp_dir().join(format!("fastsim_snapshot_study_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).expect("open scratch store");
    let snapshots: Vec<WarmCacheSnapshot> = fingerprints
        .iter()
        .map(|&fp| cold_driver.current_snapshot(fp).expect("cold round populated the group"))
        .collect();
    let t = Instant::now();
    let mut snapshot_bytes_total = 0u64;
    for snapshot in &snapshots {
        snapshot_bytes_total += store.save(snapshot).expect("persist snapshot").bytes as u64;
    }
    let save_ms = t.elapsed().as_secs_f64() * 1e3;

    // Leg 2: warm from the store — a restart. A brand-new driver adopts
    // everything the store holds, then runs the same round.
    let mut warm_driver = BatchDriver::new(args.workers);
    let t = Instant::now();
    let loaded = store.load_all().expect("scan scratch store");
    assert!(loaded.rejected.is_empty(), "a cleanly written store decodes in full");
    for entry in &loaded.loaded {
        assert!(warm_driver.adopt_snapshot(&entry.snapshot), "fresh driver adopts");
    }
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    let snapshots_loaded = loaded.loaded.len();
    let t = Instant::now();
    let warm = warm_driver.run_round(&jobs).expect("warm round");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;

    // Leg 3: warm over the wire — fleet shipping. Encode, strict-decode,
    // import into another new driver, run the round again.
    let t = Instant::now();
    let encoded: Vec<Vec<u8>> = snapshots.iter().map(|s| s.encode()).collect();
    let encode_s = t.elapsed().as_secs_f64();
    let wire_bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();
    let mut import_driver = BatchDriver::new(args.workers);
    let t = Instant::now();
    for (bytes, snapshot) in encoded.iter().zip(&snapshots) {
        let decoded = WarmCacheSnapshot::decode(bytes, Some(snapshot.fingerprint()))
            .expect("own encoding decodes");
        assert!(import_driver.import_snapshot(&decoded).is_none(), "cold driver adopts wholesale");
    }
    let decode_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let import = import_driver.run_round(&jobs).expect("import round");
    let import_ms = t.elapsed().as_secs_f64() * 1e3;

    let _ = std::fs::remove_dir_all(&store_dir);

    // Identity and warmth gates.
    let reference = result_map(&cold);
    let results_identical = result_map(&warm) == reference && result_map(&import) == reference;
    let (cold_rate, warm_rate, import_rate) =
        (cold.memo_hit_rate(), warm.memo_hit_rate(), import.memo_hit_rate());
    let warm_ok = warm_rate >= WARM_HIT_RATE_FLOOR && import_rate >= WARM_HIT_RATE_FLOOR;
    let mb = |bytes: u64, secs: f64| bytes as f64 / 1e6 / secs.max(1e-9);

    println!("\n| leg | wall (ms) | memo hit rate | Kinsts/s |");
    println!("|-----|----------:|--------------:|---------:|");
    for (leg, ms, report) in
        [("cold", cold_ms, &cold), ("warm (store)", warm_ms, &warm), ("warm (import)", import_ms, &import)]
    {
        println!(
            "| {leg} | {ms:.1} | {:.3} | {:.0} |",
            report.memo_hit_rate(),
            report.insts_per_sec() / 1e3
        );
    }
    println!(
        "\nstore: {} snapshot(s), {} bytes saved in {save_ms:.1} ms, adopted in {load_ms:.1} ms",
        snapshots.len(),
        snapshot_bytes_total
    );
    println!(
        "codec: encode {:.1} MB/s, decode {:.1} MB/s over {wire_bytes} wire bytes",
        mb(wire_bytes, encode_s),
        mb(wire_bytes, decode_s)
    );
    println!(
        "gates: results_identical={results_identical}, warm_ok={warm_ok} \
         (floor {WARM_HIT_RATE_FLOOR})"
    );

    let summary = Json::obj([
        ("schema", Json::from("fastsim-snapshot-study/v1")),
        ("insts", Json::from(args.insts)),
        ("jobs", Json::from(jobs.len())),
        ("groups", Json::from(fingerprints.len())),
        ("workers", Json::from(args.workers)),
        ("debug_build", Json::Bool(cfg!(debug_assertions))),
        ("cold_ms", Json::from(cold_ms)),
        ("cold_hit_rate", Json::from(cold_rate)),
        ("snapshots_saved", Json::from(snapshots.len())),
        ("snapshot_bytes_total", Json::from(snapshot_bytes_total)),
        ("save_ms", Json::from(save_ms)),
        ("load_ms", Json::from(load_ms)),
        ("snapshots_loaded", Json::from(snapshots_loaded)),
        ("snapshots_rejected", Json::from(loaded.rejected.len())),
        ("warm_ms", Json::from(warm_ms)),
        ("warm_hit_rate", Json::from(warm_rate)),
        ("encode_mb_per_s", Json::from(mb(wire_bytes, encode_s))),
        ("decode_mb_per_s", Json::from(mb(wire_bytes, decode_s))),
        ("import_ms", Json::from(import_ms)),
        ("import_hit_rate", Json::from(import_rate)),
        ("results_identical", Json::Bool(results_identical)),
        ("warm_ok", Json::Bool(warm_ok)),
    ]);
    std::fs::write(&args.out, format!("{summary}\n"))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("\nwrote {}", args.out);

    if !results_identical || !warm_ok {
        std::process::exit(1);
    }
}
