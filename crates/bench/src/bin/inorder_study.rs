//! Reproduces the paper's §2 motivation (citing Pai, Ranganathan & Adve,
//! HPCA '97): out-of-order processors **cannot** be approximated by
//! in-order pipeline models — the error is large and, crucially,
//! *workload-dependent*, so no constant correction factor fixes it. This
//! is why FastSim insists on simulating the out-of-order pipeline exactly
//! and attacks its cost with memoization instead of approximating it away.

use fastsim_baseline::InOrderSim;
use fastsim_bench::{banner, run_sim, RunSpec};
use fastsim_core::Mode;

fn main() {
    let spec = RunSpec::from_args();
    banner("In-order approximation study (the paper's §2 motivation)", &spec);
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "Benchmark", "OOO cycles", "in-order", "in-order/OOO"
    );
    let mut ratios = Vec::new();
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let ooo = run_sim(&program, Mode::fast());
        let mut inorder = InOrderSim::new(&program).expect("in-order builds");
        inorder.run(u64::MAX);
        assert!(inorder.finished());
        let ratio = inorder.stats().cycles as f64 / ooo.result.stats.cycles as f64;
        ratios.push(ratio);
        println!(
            "{:<14} {:>12} {:>12} {:>11.2}x",
            w.name,
            ooo.result.stats.cycles,
            inorder.stats().cycles,
            ratio
        );
    }
    let (min, max) = ratios
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    println!(
        "\nin-order/OOO cycle ratio spans {min:.2}x – {max:.2}x across the suite:"
    );
    println!("no constant scale factor turns an in-order estimate into an OOO one,");
    println!("reproducing why the paper simulates the out-of-order pipeline exactly.");
}
