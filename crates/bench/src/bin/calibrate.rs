//! Internal tool: reports actual dynamic instruction counts for each
//! workload at a 1M-instruction target, for calibrating `insts_per_unit`.

use fastsim_emu::FuncEmulator;
use fastsim_workloads::all;
use std::rc::Rc;

fn main() {
    for w in all() {
        let p = w.program_for_insts(1_000_000);
        let prog = Rc::new(p.predecode().unwrap());
        let mut e = FuncEmulator::new(prog, &p);
        e.run(500_000_000);
        println!("{}\ttarget=1M actual={}", w.name, e.insts());
    }
}
