//! `serve_study` — warm-start latency trajectory under the job server.
//!
//! Starts an in-process `fastsim-serve` server on a private Unix socket,
//! then fires N concurrent clients at it with staggered arrivals. Every
//! client submits the *same* kernel set, so each one benefits from the
//! deltas merged (and snapshots re-frozen) by the clients before it: the
//! study prints, per client, the end-to-end latency and the memoization
//! hit rate its jobs observed — the "late clients start warmer"
//! trajectory — and cross-checks that every client got bit-identical
//! simulated results.
//!
//! ```text
//! cargo run --release -p fastsim-bench --bin serve_study --
//!     [--clients N] [--workers N] [--kernels A,B] [--insts N]
//!     [--replicas N] [--refreeze-every N] [--stagger-ms N]
//!     [--snapshot-dir PATH]
//! ```
//!
//! With `--snapshot-dir` the server runs on a durable snapshot store
//! (adopting whatever a previous study run persisted — re-run the study
//! on the same directory to watch client 0 start warm), and the final
//! report includes the `snapshot` metrics block (loads, saves, bytes,
//! rejects, newest generation).
//!
//! Output is a Markdown table (see `EXPERIMENTS.md`) plus the server's
//! final metrics dump.

use fastsim_serve::client::Client;
use fastsim_serve::json::Json;
use fastsim_serve::server::{Listener, ServeConfig, Server};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

struct ClientRow {
    latency: Duration,
    memo_hits: u64,
    memo_misses: u64,
    detailed: u64,
    replayed: u64,
    /// name → (cycles, retired) per job, for the bit-identical check.
    results: BTreeMap<String, (u64, u64)>,
}

fn main() {
    let mut clients: usize = 6;
    let mut workers: usize = 2;
    let mut kernels = "compress,vortex".to_string();
    let mut insts: u64 = 50_000;
    let mut replicas: u64 = 2;
    let mut refreeze_every: usize = 2;
    let mut stagger = Duration::from_millis(100);
    let mut snapshot_dir: Option<std::path::PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--clients" => clients = value("--clients").parse().expect("--clients"),
            "--workers" => workers = value("--workers").parse().expect("--workers"),
            "--kernels" => kernels = value("--kernels"),
            "--insts" => insts = value("--insts").parse().expect("--insts"),
            "--replicas" => replicas = value("--replicas").parse().expect("--replicas"),
            "--refreeze-every" => {
                refreeze_every = value("--refreeze-every").parse().expect("--refreeze-every")
            }
            "--stagger-ms" => {
                stagger = Duration::from_millis(value("--stagger-ms").parse().expect("--stagger-ms"))
            }
            "--snapshot-dir" => snapshot_dir = Some(value("--snapshot-dir").into()),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    let socket = std::env::temp_dir().join(format!("fastsim_serve_study_{}.sock", std::process::id()));
    let cfg = ServeConfig {
        workers,
        refreeze_every,
        snapshot_dir: snapshot_dir.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::start(
        cfg,
        vec![Listener::unix(&socket).expect("bind study socket")],
    );

    println!(
        "# serve_study: {clients} clients x ({kernels}) x{replicas}, {insts} insts, \
         {workers} workers, refreeze every {refreeze_every} merges, {}ms stagger",
        stagger.as_millis()
    );

    // Fire the clients concurrently, staggered by arrival index.
    let rows: Vec<ClientRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let socket = socket.clone();
                let kernels = kernels.clone();
                scope.spawn(move || {
                    std::thread::sleep(stagger * i as u32);
                    run_client(&socket, i, &kernels, insts, replicas)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Bit-identical check: every client must report the same
    // (cycles, retired) per job name, whatever warmth it started from.
    let reference = &rows[0].results;
    let identical = rows.iter().all(|r| &r.results == reference);

    println!("\n| client | latency (ms) | memo hit rate | detailed insts | replayed insts |");
    println!("|-------:|-------------:|--------------:|---------------:|---------------:|");
    for (i, row) in rows.iter().enumerate() {
        let lookups = row.memo_hits + row.memo_misses;
        let rate = if lookups == 0 { 0.0 } else { row.memo_hits as f64 / lookups as f64 };
        println!(
            "| {i} | {:.1} | {:.3} | {} | {} |",
            row.latency.as_secs_f64() * 1e3,
            rate,
            row.detailed,
            row.replayed,
        );
    }
    println!(
        "\nbit-identical results across clients: {}",
        if identical { "yes" } else { "NO — BUG" }
    );

    // Shut the server down and show its final registry.
    let mut c = Client::connect_unix(&socket).expect("connect for shutdown");
    c.shutdown().expect("shutdown");
    let final_metrics = handle.wait();
    if let Some(ev) = final_metrics.get("event_loop") {
        let n = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "\nevent loop: {} wakeups, {} ready events, {} conns accepted, \
             {} EAGAIN reads, {} partial writes",
            n("loop_wakeups"),
            n("ready_events"),
            n("accepted"),
            n("eagain_reads"),
            n("partial_writes"),
        );
    }
    if let Some(snap) = final_metrics.get("snapshot") {
        let n = |k: &str| snap.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "\nsnapshot store: {} adopted ({} bytes), {} persisted ({} bytes), \
             {} rejected, newest generation {}",
            n("loads"),
            n("bytes_loaded"),
            n("saves"),
            n("bytes_saved"),
            n("rejected"),
            n("generation"),
        );
    }
    println!("\nfinal metrics: {final_metrics}");
    if !identical {
        std::process::exit(1);
    }
}

/// One client: submit-and-wait, then reduce its job reports to a row.
fn run_client(
    socket: &std::path::Path,
    index: usize,
    kernels: &str,
    insts: u64,
    replicas: u64,
) -> ClientRow {
    let mut client = Client::connect_unix(socket).expect("connect client");
    let submit = Json::obj([
        ("op", Json::from("submit")),
        ("kernels", Json::Arr(kernels.split(',').map(Json::from).collect())),
        ("insts", Json::from(insts)),
        ("replicas", Json::from(replicas)),
        ("client", Json::Str(format!("client-{index}"))),
        ("wait", Json::Bool(true)),
    ]);
    let start = Instant::now();
    let resp = client.expect_ok(&submit).expect("submit");
    let latency = start.elapsed();

    let mut row = ClientRow {
        latency,
        memo_hits: 0,
        memo_misses: 0,
        detailed: 0,
        replayed: 0,
        results: BTreeMap::new(),
    };
    for job in resp.get("jobs").and_then(Json::as_arr).expect("jobs array") {
        let name = job.get("name").and_then(Json::as_str).expect("job name").to_string();
        let result = job.get("result").expect("all study jobs succeed");
        let field = |k: &str| result.get(k).and_then(Json::as_u64).unwrap_or(0);
        row.memo_hits += field("memo_hits");
        row.memo_misses += field("memo_misses");
        row.detailed += field("detailed_insts");
        row.replayed += field("replayed_insts");
        row.results.insert(name, (field("cycles"), field("retired_insts")));
    }
    row
}
