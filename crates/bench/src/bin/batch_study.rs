//! Batch-simulation study: runs a workload manifest through the parallel
//! batch driver for several rounds and reports how the shared warm
//! p-action cache pays off — fleet throughput, per-round memoization hit
//! rate (round 2 replays what round 1 merged), and per-job determinism.
//!
//! ```text
//! cargo run --release -p fastsim-bench --bin batch_study -- \
//!     --insts 500000 --workers 4 --rounds 2 --replicas 2 \
//!     [--filter compress] [--hierarchy three-level]
//! ```

use fastsim_core::batch::{BatchDriver, BatchJob};
use fastsim_core::{HierarchyConfig, LevelStats};
use fastsim_workloads::Manifest;

struct Args {
    insts: u64,
    workers: usize,
    rounds: usize,
    replicas: usize,
    filter: Option<String>,
    hierarchy: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        insts: 200_000,
        workers: 4,
        rounds: 2,
        replicas: 1,
        filter: None,
        hierarchy: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.replace('_', "").parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match arg.as_str() {
            "--insts" => out.insts = num("--insts"),
            "--workers" => out.workers = num("--workers") as usize,
            "--rounds" => out.rounds = num("--rounds") as usize,
            "--replicas" => out.replicas = num("--replicas") as usize,
            "--filter" => out.filter = args.next(),
            "--hierarchy" => out.hierarchy = args.next(),
            other => panic!(
                "unknown argument `{other}` (expected --insts/--workers/--rounds/--replicas/--filter/--hierarchy)"
            ),
        }
    }
    out
}

/// Resolves a preset name or exits with the known names.
fn resolve_preset(name: &str) -> HierarchyConfig {
    HierarchyConfig::preset(name).unwrap_or_else(|| {
        panic!(
            "unknown hierarchy preset `{name}` (known: {})",
            HierarchyConfig::preset_names().join(", ")
        )
    })
}

fn main() {
    let args = parse_args();
    let mut manifest = Manifest::mixed(args.insts).replicated(args.replicas);
    if let Some(f) = &args.filter {
        manifest = manifest.filtered(f);
    }
    if let Some(p) = &args.hierarchy {
        resolve_preset(p); // fail fast on a typo, before building jobs
        manifest = manifest.with_hierarchy(p);
    }
    assert!(!manifest.is_empty(), "filter matched no jobs");
    let jobs: Vec<BatchJob> = manifest
        .into_jobs()
        .into_iter()
        .map(|j| {
            let mut job = BatchJob::new(j.name, j.program);
            if let Some(p) = j.hierarchy.as_deref() {
                job.hierarchy = resolve_preset(p);
            }
            job
        })
        .collect();

    println!();
    println!(
        "=== batch_study: {} jobs, {} workers, {} rounds, hierarchy {} ===",
        jobs.len(),
        args.workers,
        args.rounds,
        args.hierarchy.as_deref().unwrap_or("table1 (default)")
    );
    if cfg!(debug_assertions) {
        println!("[WARNING: debug build — times are not meaningful]");
    }
    println!();

    let mut driver = BatchDriver::new(args.workers);
    let mut prev_hit_rate: Option<f64> = None;
    for round in 1..=args.rounds {
        let report = driver.run_round(&jobs).unwrap_or_else(|e| panic!("round {round}: {e}"));
        println!(
            "--- round {round}: {:.0} Kinsts/s fleet, hit rate {:.1}%, GC survival {:.1}% ---",
            report.insts_per_sec() / 1e3,
            report.memo_hit_rate() * 100.0,
            report.gc_survival_rate() * 100.0,
        );
        println!(
            "{:<18} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>7}",
            "job", "cycles", "insts", "hit%", "cfgs+", "dedup", "segments", "bailouts", "chained",
            "thawed"
        );
        for j in &report.jobs {
            println!(
                "{:<18} {:>10} {:>10} {:>7.1}% {:>10} {:>10} {:>9} {:>9} {:>8} {:>7}",
                j.name,
                j.stats.cycles,
                j.stats.retired_insts,
                j.hit_rate() * 100.0,
                j.merge.configs_added,
                j.merge.configs_deduped,
                j.memo.replay_segments_entered,
                j.memo.replay_bailouts,
                j.memo.chained_exits,
                j.memo.segments_thawed,
            );
        }
        // Per-level cache behaviour, summed over the fleet (every job in a
        // round runs the same hierarchy depth).
        let depth = report.jobs.iter().map(|j| j.level_stats.len()).max().unwrap_or(0);
        let mut agg = vec![LevelStats::default(); depth];
        for j in &report.jobs {
            for (a, l) in agg.iter_mut().zip(&j.level_stats) {
                a.hits += l.hits;
                a.misses += l.misses;
                a.mshr_stall_cycles += l.mshr_stall_cycles;
                a.writebacks += l.writebacks;
            }
        }
        println!(
            "{:<6} {:>12} {:>12} {:>7} {:>12} {:>11}",
            "level", "hits", "misses", "hit%", "mshr stalls", "writebacks"
        );
        for (i, l) in agg.iter().enumerate() {
            let total = (l.hits + l.misses).max(1);
            println!(
                "L{:<5} {:>12} {:>12} {:>6.1}% {:>12} {:>11}",
                i,
                l.hits,
                l.misses,
                l.hits as f64 / total as f64 * 100.0,
                l.mshr_stall_cycles,
                l.writebacks
            );
        }
        let merged = report.merged();
        println!(
            "merged: +{} configs, +{} actions, {} grafted branches, {} deduped",
            merged.configs_added, merged.actions_added, merged.branches_grafted, merged.configs_deduped
        );
        if let Some(prev) = prev_hit_rate {
            let now = report.memo_hit_rate();
            println!(
                "warm-cache effect: hit rate {:.1}% -> {:.1}% ({})",
                prev * 100.0,
                now * 100.0,
                if now > prev { "improved" } else { "no improvement" }
            );
        }
        prev_hit_rate = Some(report.memo_hit_rate());
        println!();
    }
}
