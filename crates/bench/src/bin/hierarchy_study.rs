//! Hierarchy-depth study: does memoization survive a deeper memory
//! hierarchy? The paper's evaluation fixes the two-level Table 1 caches;
//! this study re-runs the SlowSim/FastSim comparison under each named
//! hierarchy preset and reports, per workload: cycles, the memoization
//! speedup (Slow/Fast host time), the configuration-lookup hit rate, and
//! the fraction of instructions still simulated in detail.
//!
//! The interesting outcome is the *ratio* columns staying put across
//! depths: the p-action cache only ever sees load intervals and poll
//! results (§4.1), so a third cache level changes the simulated timing
//! but not the memoizability of the pipeline's behaviour.
//!
//! ```text
//! cargo run --release -p fastsim-bench --bin hierarchy_study -- \
//!     --insts 500000 [--filter compress]
//! ```

use fastsim_bench::{banner, run_sim_hier, RunSpec};
use fastsim_core::{HierarchyConfig, Mode};

fn main() {
    let spec = RunSpec::from_args();
    banner("Hierarchy study: memoization across cache-hierarchy depths", &spec);
    for preset in HierarchyConfig::preset_names() {
        let hier = HierarchyConfig::preset(preset).expect("named preset");
        println!("--- {preset}: {} level(s) ---", hier.depth());
        println!(
            "{:<14} {:>12} {:>11} {:>10} {:>10} {:>10}",
            "Benchmark", "cycles", "Slow/Fast", "hit rate", "detailed%", "KIPS fast"
        );
        let mut ratios = Vec::new();
        for w in spec.workloads() {
            let program = w.program_for_insts(spec.insts);
            let slow = run_sim_hier(&program, Mode::Slow, &hier);
            let fast = run_sim_hier(&program, Mode::fast(), &hier);
            assert_eq!(
                slow.result.stats.cycles, fast.result.stats.cycles,
                "{preset}/{}: memoization must not change the cycle count",
                w.name
            );
            let stats = &fast.result.stats;
            let memo = fast.result.memo.expect("fast mode");
            let lookups = (memo.config_hits + memo.config_misses).max(1);
            let ratio = slow.time.as_secs_f64() / fast.time.as_secs_f64().max(1e-9);
            ratios.push(ratio);
            println!(
                "{:<14} {:>12} {:>10.1}x {:>9.1}% {:>9.3}% {:>10.0}",
                w.name,
                stats.cycles,
                ratio,
                memo.config_hits as f64 / lookups as f64 * 100.0,
                stats.detailed_insts as f64 / stats.retired_insts.max(1) as f64 * 100.0,
                stats.retired_insts as f64 / fast.time.as_secs_f64().max(1e-9) / 1e3,
            );
        }
        let n = ratios.len().max(1) as f64;
        let geomean = (ratios.iter().map(|r| r.max(1e-12).ln()).sum::<f64>() / n).exp();
        println!("geomean memoization speedup under {preset}: {geomean:.1}x");
        println!();
    }
}
