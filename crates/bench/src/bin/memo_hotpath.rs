//! `memo_hotpath` — the memoization hot-path trajectory benchmark.
//!
//! The paper's speedup lives or dies in the per-interaction-cycle loop:
//! encode the configuration, look it up in the p-action cache, replay on a
//! hit. This binary self-times exactly that loop on the workload suite and
//! writes a machine-readable trajectory file (`BENCH_memo.json` by
//! default) so every future PR can be compared against the recorded
//! baseline.
//!
//! Per workload it reports:
//!
//! * `configs_per_sec` — encode + `register_config` throughput over a
//!   captured stream of real pipeline states (hit path, steady state);
//! * `encode_ns_per_config` — configuration encoding alone;
//! * `hit_rate` — configuration hit rate of a cold FastSim run;
//! * `ff_speedup` — end-to-end SlowSim time over warm-started FastSim
//!   time (the fast-forwarding payoff);
//! * raw `slow_ms` / `cold_ms` / `warm_ms` wall times.
//!
//! Usage: `memo_hotpath [--insts N] [--filter SUBSTR] [--out PATH]`.
//! Run in release mode; a `debug_build: true` marker is embedded otherwise
//! so the trajectory can never silently mix debug numbers.

use fastsim_core::{CacheConfig, Mode, Simulator, UArchConfig};
use fastsim_isa::Program;
use fastsim_memo::{ActionKind, PActionCache, Policy, RetireCounts};
use fastsim_uarch::{encode_config, encode_config_into, PipelineState};
use fastsim_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

/// Captured pipeline states per workload for the micro loops.
const MAX_STATES: usize = 1024;
/// Timing samples per micro measurement (median reported).
const SAMPLES: usize = 7;

struct Args {
    insts: u64,
    filter: Option<String>,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args { insts: 200_000, filter: None, out: "BENCH_memo.json".into() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--insts" => {
                parsed.insts = args
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .unwrap_or_else(|| panic!("--insts needs a number"));
            }
            "--filter" => parsed.filter = args.next(),
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument `{other}` (expected --insts/--filter/--out)"),
        }
    }
    parsed
}

struct Row {
    name: String,
    configs_per_sec: f64,
    encode_ns: f64,
    hit_rate: f64,
    ff_speedup: f64,
    slow_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
}

/// Samples real pipeline states from a short detailed (SlowSim) run.
fn capture_states(program: &Program, insts: u64) -> Vec<PipelineState> {
    let mut sim = Simulator::new(program, Mode::Slow).expect("slow sim builds");
    let states = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let sink = states.clone();
    sim.set_cycle_observer(Some(Box::new(move |_, state, _| {
        let mut sink = sink.borrow_mut();
        if sink.len() < MAX_STATES && !state.iq.is_empty() {
            sink.push(state.clone());
        }
    })));
    sim.run(insts.min(40_000)).expect("capture run");
    sim.set_cycle_observer(None);
    std::rc::Rc::into_inner(states).expect("observer dropped").into_inner()
}

/// Median of raw f64 samples.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// The steady-state hot loop: encode every captured state and register it,
/// against a cache pre-populated with every configuration (hit path).
fn time_hot_loop(states: &[PipelineState], prog: &fastsim_isa::DecodedProgram) -> f64 {
    let mut pc = PActionCache::new(Policy::Unbounded);
    for st in states {
        let bytes = encode_config(st, prog);
        if pc.register_config(&bytes) == fastsim_memo::ConfigLookup::Miss {
            pc.record_action(ActionKind::Advance { cycles: 1, retired: RetireCounts::default() });
        }
    }
    pc.record_action(ActionKind::Finish);
    // Timed passes: every registration is a hit, exactly the engine's
    // per-interaction-cycle cost (encode into the reused scratch buffer +
    // one-hash arena lookup — zero allocations at steady state).
    let mut scratch = Vec::new();
    let passes = (20_000 / states.len().max(1)).max(1);
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..passes {
                for st in states {
                    encode_config_into(&mut scratch, std::hint::black_box(st), prog);
                    std::hint::black_box(pc.register_config(&scratch));
                }
            }
            let dt = start.elapsed().as_secs_f64();
            (passes * states.len()) as f64 / dt
        })
        .collect();
    median(samples)
}

/// Encoding alone (into a reused scratch buffer), ns per configuration.
fn time_encode(states: &[PipelineState], prog: &fastsim_isa::DecodedProgram) -> f64 {
    let mut scratch = Vec::new();
    let passes = (20_000 / states.len().max(1)).max(1);
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..passes {
                for st in states {
                    encode_config_into(&mut scratch, std::hint::black_box(st), prog);
                    std::hint::black_box(&scratch);
                }
            }
            start.elapsed().as_secs_f64() * 1e9 / (passes * states.len()) as f64
        })
        .collect();
    median(samples)
}

fn run_workload(w: &Workload, insts: u64) -> Row {
    let program = w.program_for_insts(insts);
    let prog = program.predecode().expect("program decodes");
    let states = capture_states(&program, insts);
    assert!(!states.is_empty(), "{}: no pipeline states captured", w.name);

    let configs_per_sec = time_hot_loop(&states, &prog);
    let encode_ns = time_encode(&states, &prog);

    // End-to-end: SlowSim, cold FastSim, warm FastSim.
    let start = Instant::now();
    let mut slow = Simulator::new(&program, Mode::Slow).expect("slow builds");
    slow.run_to_completion().expect("slow completes");
    let slow_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut cold = Simulator::new(&program, Mode::fast()).expect("fast builds");
    cold.run_to_completion().expect("fast completes");
    let cold_s = start.elapsed().as_secs_f64();
    let hit_rate = cold.memo_stats().expect("fast mode").hit_rate();
    let warm_cache = cold.take_warm_cache().expect("fast mode");

    let start = Instant::now();
    let mut warm = Simulator::with_warm_cache(
        &program,
        warm_cache,
        UArchConfig::table1(),
        CacheConfig::table1(),
    )
    .expect("warm builds");
    warm.run_to_completion().expect("warm completes");
    let warm_s = start.elapsed().as_secs_f64();
    assert_eq!(warm.stats().cycles, slow.stats().cycles, "{}: exactness", w.name);

    Row {
        name: w.name.to_string(),
        configs_per_sec,
        encode_ns,
        hit_rate,
        ff_speedup: slow_s / warm_s.max(1e-9),
        slow_ms: slow_s * 1e3,
        cold_ms: cold_s * 1e3,
        warm_ms: warm_s * 1e3,
    }
}

fn geomean(xs: impl Iterator<Item = f64> + Clone, n: usize) -> f64 {
    (xs.map(|x| x.max(1e-12).ln()).sum::<f64>() / n.max(1) as f64).exp()
}

fn main() {
    let args = parse_args();
    let workloads: Vec<Workload> = fastsim_workloads::all()
        .into_iter()
        .filter(|w| args.filter.as_deref().is_none_or(|f| w.name.contains(f)))
        .collect();
    assert!(!workloads.is_empty(), "filter matched no workloads");

    println!();
    println!("=== memo_hotpath: memoization hot-path trajectory ===");
    println!("target insts/workload: {}{}", args.insts, if cfg!(debug_assertions) {
        "  [WARNING: debug build — times are not meaningful]"
    } else {
        ""
    });
    println!();
    println!(
        "{:<14} {:>14} {:>12} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "workload", "configs/sec", "encode ns", "hit rate", "ff speedup", "slow ms", "cold ms",
        "warm ms"
    );

    let rows: Vec<Row> = workloads
        .iter()
        .map(|w| {
            let r = run_workload(w, args.insts);
            println!(
                "{:<14} {:>14.0} {:>12.1} {:>9.4} {:>11.2} {:>9.1} {:>9.1} {:>9.1}",
                r.name, r.configs_per_sec, r.encode_ns, r.hit_rate, r.ff_speedup, r.slow_ms,
                r.cold_ms, r.warm_ms
            );
            r
        })
        .collect();

    let n = rows.len();
    let sum_cps = geomean(rows.iter().map(|r| r.configs_per_sec), n);
    let sum_enc = geomean(rows.iter().map(|r| r.encode_ns), n);
    let sum_hit = rows.iter().map(|r| r.hit_rate).sum::<f64>() / n as f64;
    let sum_ff = geomean(rows.iter().map(|r| r.ff_speedup), n);
    println!();
    println!(
        "geomean configs/sec {:.0}   geomean encode {:.1} ns   mean hit rate {:.4}   geomean ff speedup {:.2}x",
        sum_cps, sum_enc, sum_hit, sum_ff
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"fastsim-memo-hotpath/v1\",");
    let _ = writeln!(json, "  \"insts_per_workload\": {},", args.insts);
    let _ = writeln!(json, "  \"debug_build\": {},", cfg!(debug_assertions));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"configs_per_sec\": {:.1}, \"encode_ns_per_config\": {:.2}, \"hit_rate\": {:.6}, \"ff_speedup\": {:.3}, \"slow_ms\": {:.2}, \"cold_ms\": {:.2}, \"warm_ms\": {:.2}}}{}",
            r.name,
            r.configs_per_sec,
            r.encode_ns,
            r.hit_rate,
            r.ff_speedup,
            r.slow_ms,
            r.cold_ms,
            r.warm_ms,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"summary\": {\n");
    let _ = writeln!(json, "    \"workloads\": {},", n);
    let _ = writeln!(json, "    \"configs_per_sec_geomean\": {:.1},", sum_cps);
    let _ = writeln!(json, "    \"encode_ns_per_config_geomean\": {:.2},", sum_enc);
    let _ = writeln!(json, "    \"hit_rate_mean\": {:.6},", sum_hit);
    let _ = writeln!(json, "    \"ff_speedup_geomean\": {:.3}", sum_ff);
    json.push_str("  }\n}\n");
    std::fs::write(&args.out, json).expect("write trajectory file");
    println!("wrote {}", args.out);
}
