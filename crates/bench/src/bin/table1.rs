//! Regenerates Table 1: the processor model parameters, printed from the
//! live configuration defaults so the table can never drift from the code.

use fastsim_core::{CacheConfig, UArchConfig};

fn main() {
    let u = UArchConfig::table1();
    let c = CacheConfig::table1();
    println!("=== Table 1: FastSim's processor model parameters ===\n");
    println!("Decode {} instructions per cycle.", u.decode_width);
    println!(
        "{} integer ALUs, {} FPUs, and {} load/store address adder(s).",
        u.int_alus, u.fp_units, u.agen_units
    );
    println!(
        "{} physical 32-bit integer registers, and {} 64-bit floating point registers.",
        u.phys_int_regs, u.phys_fp_regs
    );
    println!("2-bit/512-entry branch history table for branch prediction.");
    println!(
        "Speculatively execute instructions through up to {} conditional branches.",
        u.max_branches
    );
    println!(
        "Non-blocking L1 and L2 data caches, {}/{} MSHRs each.",
        c.l1_mshrs, c.l2_mshrs
    );
    println!(
        "{} KByte {}-way set associative write through L1 data cache.",
        c.l1_bytes / 1024,
        c.l1_assoc
    );
    println!(
        "{} MByte {}-way set associative write back L2 data cache.",
        c.l2_bytes / (1024 * 1024),
        c.l2_assoc
    );
    println!("{} byte wide, split transaction bus.", c.bus_bytes);
    println!(
        "\nIssue queues: {} int / {} fp / {} addr entries; active list {}.",
        u.int_queue, u.fp_queue, u.addr_queue, u.iq_capacity
    );
    println!(
        "Latencies: int mul {}, int div {}, fp add {}, fp mul {}, fp div {}, fp sqrt {}.",
        u.lat_int_mul, u.lat_int_div, u.lat_fp_add, u.lat_fp_mul, u.lat_fp_div, u.lat_fp_sqrt
    );
    println!(
        "Cache timing: L1 hit {}, L1 miss->L2 {}, memory {} cycles.",
        c.l1_hit_latency, c.l1_miss_latency, c.memory_latency
    );
}
