//! Ablation sweeps over the processor-model design choices DESIGN.md
//! calls out. Every point is simulated with FastSim and cross-checked
//! against SlowSim for exact equality — design changes move the *cycle
//! count*, never the memoization correctness.
//!
//! Sweeps:
//!  1. machine width (fetch/decode/retire + units scaled together);
//!  2. speculation depth (maximum unresolved conditional branches);
//!  3. branch-history-table size.

use fastsim_bench::{banner, RunSpec};
use fastsim_core::{CacheConfig, Mode, Simulator, UArchConfig};
use fastsim_emu::{BranchPredictor, PredictorKind};
use fastsim_isa::Program;

fn run_cycles(program: &Program, uarch: UArchConfig, bht: usize) -> (u64, f64) {
    run_cycles_kind(program, uarch, bht, PredictorKind::Bimodal)
}

fn run_cycles_kind(
    program: &Program,
    uarch: UArchConfig,
    bht: usize,
    kind: PredictorKind,
) -> (u64, f64) {
    let mut fast = Simulator::with_predictor(
        program,
        Mode::fast(),
        uarch,
        CacheConfig::table1(),
        BranchPredictor::with_kind(kind, bht, 512),
    )
    .expect("simulator builds");
    fast.run_to_completion().expect("fast run");
    let mut slow = Simulator::with_predictor(
        program,
        Mode::Slow,
        uarch,
        CacheConfig::table1(),
        BranchPredictor::with_kind(kind, bht, 512),
    )
    .expect("simulator builds");
    slow.run_to_completion().expect("slow run");
    assert_eq!(
        fast.stats().cycles,
        slow.stats().cycles,
        "memoization must stay exact under every configuration"
    );
    (fast.stats().cycles, fast.stats().ipc())
}

fn width_config(w: u32) -> UArchConfig {
    let mut c = UArchConfig::table1();
    c.fetch_width = w;
    c.decode_width = w;
    c.retire_width = w;
    c.int_alus = (w / 2).max(1);
    c.fp_units = (w / 2).max(1);
    c.agen_units = (w / 4).max(1);
    c.cache_ports = (w / 4).max(1);
    c.iq_capacity = 8 * w as usize;
    c.int_queue = 4 * w as usize;
    c.fp_queue = 4 * w as usize;
    c.addr_queue = 4 * w as usize;
    c.phys_int_regs = 32 + 8 * w;
    c.phys_fp_regs = 32 + 8 * w;
    c
}

fn main() {
    let mut spec = RunSpec::from_args();
    if spec.filter.is_none() {
        // Default subset: one branchy, one memory-bound, one FP-regular.
        spec.filter = Some(String::new());
    }
    let kernels = ["099.go", "132.ijpeg", "107.mgrid"];
    banner("Ablation: machine width / speculation depth / BHT size", &spec);
    let programs: Vec<_> = kernels
        .iter()
        .map(|n| {
            let w = fastsim_workloads::by_name(n).expect("kernel");
            (n, w.program_for_insts(spec.insts.min(500_000)))
        })
        .collect();

    println!("-- machine width (units, queues and renames scaled with width)");
    println!("{:<12} {:>7} {:>12} {:>7}", "benchmark", "width", "cycles", "IPC");
    for (name, program) in &programs {
        for w in [1, 2, 4, 8] {
            let (cycles, ipc) = run_cycles(program, width_config(w), 512);
            println!("{name:<12} {w:>7} {cycles:>12} {ipc:>7.2}");
        }
    }

    println!("\n-- speculation depth (max unresolved conditional branches)");
    println!("{:<12} {:>7} {:>12} {:>7}", "benchmark", "depth", "cycles", "IPC");
    for (name, program) in &programs {
        for depth in [1, 2, 4, 8] {
            let mut c = UArchConfig::table1();
            c.max_branches = depth;
            let (cycles, ipc) = run_cycles(program, c, 512);
            println!("{name:<12} {depth:>7} {cycles:>12} {ipc:>7.2}");
        }
    }

    println!("\n-- branch history table size (2-bit counters)");
    println!("{:<12} {:>7} {:>12} {:>7}", "benchmark", "entries", "cycles", "IPC");
    for (name, program) in &programs {
        for bht in [16, 64, 512, 4096] {
            let (cycles, ipc) = run_cycles(program, UArchConfig::table1(), bht);
            println!("{name:<12} {bht:>7} {cycles:>12} {ipc:>7.2}");
        }
    }
    println!("\n-- predictor scheme (bimodal vs gshare) and issue discipline");
    println!(
        "{:<12} {:>22} {:>12} {:>7}",
        "benchmark", "variant", "cycles", "IPC"
    );
    for (name, program) in &programs {
        for (label, kind) in
            [("bimodal-512", PredictorKind::Bimodal), ("gshare-512", PredictorKind::Gshare)]
        {
            let (cycles, ipc) =
                run_cycles_kind(program, UArchConfig::table1(), 512, kind);
            println!("{name:<12} {label:>22} {cycles:>12} {ipc:>7.2}");
        }
        let mut inorder = UArchConfig::table1();
        inorder.issue_model = fastsim_core::IssueModel::InOrder;
        let (cycles, ipc) = run_cycles(program, inorder, 512);
        println!("{name:<12} {:>22} {cycles:>12} {ipc:>7.2}", "in-order issue");
    }

    println!("\nEvery point above was verified cycle-identical between FastSim and");
    println!("SlowSim: the design choices change the simulated machine, never the");
    println!("exactness of fast-forwarding.");
}
