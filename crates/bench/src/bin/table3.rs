//! Regenerates Table 3: simulated cycles and retired instructions, plus
//! average simulated Kinsts/sec for the SimpleScalar-like baseline, SlowSim
//! and FastSim, and FastSim's speedup over the baseline (the paper reports
//! 8.5–14.7×; with only direct-execution, 1.1–2.1×).

use fastsim_bench::{banner, kinsts_per_sec, run_baseline, run_sim, RunSpec};
use fastsim_core::Mode;

fn main() {
    let spec = RunSpec::from_args();
    banner("Table 3: FastSim vs a conventional out-of-order simulator", &spec);
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Benchmark",
        "cycles",
        "insts",
        "Base K/s",
        "Slow K/s",
        "Fast K/s",
        "Slow/Base",
        "Fast/Base"
    );
    let (mut min_f, mut max_f) = (f64::MAX, f64::MIN);
    let (mut min_s, mut max_s) = (f64::MAX, f64::MIN);
    for w in spec.workloads() {
        let program = w.program_for_insts(spec.insts);
        let base = run_baseline(&program);
        let slow = run_sim(&program, Mode::Slow);
        let fast = run_sim(&program, Mode::fast());
        let insts = fast.result.stats.retired_insts;
        let base_k = kinsts_per_sec(base.result.1, base.time);
        let slow_k = kinsts_per_sec(insts, slow.time);
        let fast_k = kinsts_per_sec(insts, fast.time);
        let f_ratio = fast_k / base_k;
        let s_ratio = slow_k / base_k;
        min_f = min_f.min(f_ratio);
        max_f = max_f.max(f_ratio);
        min_s = min_s.min(s_ratio);
        max_s = max_s.max(s_ratio);
        println!(
            "{:<14} {:>12} {:>12} {:>10.0} {:>10.0} {:>10.0} {:>10.1} {:>10.1}",
            w.name,
            fast.result.stats.cycles,
            insts,
            base_k,
            slow_k,
            fast_k,
            s_ratio,
            f_ratio
        );
    }
    println!(
        "\nSlowSim / baseline:  {min_s:.1}x – {max_s:.1}x  (paper: 1.1x – 2.1x)"
    );
    println!(
        "FastSim / baseline:  {min_f:.1}x – {max_f:.1}x  (paper: 8.5x – 14.7x)"
    );
}
