//! Criterion harness for Table 3's comparison: the SimpleScalar-like
//! baseline simulator vs FastSim (and the bare functional emulator for the
//! "Program" reference) over representative workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastsim_baseline::BaselineSim;
use fastsim_core::{Mode, Simulator};
use fastsim_emu::FuncEmulator;
use fastsim_workloads::by_name;
use std::rc::Rc;
use std::time::Duration;

const INSTS: u64 = 200_000;
const KERNELS: [&str; 4] = ["compress", "vortex", "tomcatv", "fpppp"];

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_baseline");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for name in KERNELS {
        let w = by_name(name).expect("kernel exists");
        let program = w.program_for_insts(INSTS);
        group.bench_with_input(BenchmarkId::new("program", name), &program, |b, p| {
            let prog = Rc::new(p.predecode().unwrap());
            b.iter(|| {
                let mut emu = FuncEmulator::new(prog.clone(), p);
                emu.run(u64::MAX);
                emu.insts()
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline", name), &program, |b, p| {
            b.iter(|| {
                let mut sim = BaselineSim::new(p).unwrap();
                sim.run(u64::MAX);
                sim.stats().cycles
            })
        });
        group.bench_with_input(BenchmarkId::new("fastsim", name), &program, |b, p| {
            b.iter(|| {
                let mut sim = Simulator::new(p, Mode::fast()).unwrap();
                sim.run_to_completion().unwrap();
                sim.stats().cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
