//! Self-timed harness for Table 3's comparison: the SimpleScalar-like
//! baseline simulator vs FastSim (and the bare functional emulator for the
//! "Program" reference) over representative workloads. (Formerly a
//! Criterion harness; rewritten on `fastsim_bench::timing` so `cargo
//! bench` needs no crates.io dependencies.)

use fastsim_baseline::BaselineSim;
use fastsim_bench::timing;
use fastsim_core::{Mode, Simulator};
use fastsim_emu::FuncEmulator;
use fastsim_workloads::by_name;
use std::rc::Rc;

const INSTS: u64 = 200_000;
const SAMPLES: usize = 10;
const KERNELS: [&str; 4] = ["compress", "vortex", "tomcatv", "fpppp"];

fn main() {
    timing::banner("table3_baseline");
    for name in KERNELS {
        let w = by_name(name).expect("kernel exists");
        let program = w.program_for_insts(INSTS);
        let prog = Rc::new(program.predecode().unwrap());
        timing::measure(&format!("program/{name}"), SAMPLES, || {
            let mut emu = FuncEmulator::new(prog.clone(), &program);
            emu.run(u64::MAX);
            emu.insts()
        });
        timing::measure(&format!("baseline/{name}"), SAMPLES, || {
            let mut sim = BaselineSim::new(&program).unwrap();
            sim.run(u64::MAX);
            sim.stats().cycles
        });
        timing::measure(&format!("fastsim/{name}"), SAMPLES, || {
            let mut sim = Simulator::new(&program, Mode::fast()).unwrap();
            sim.run_to_completion().unwrap();
            sim.stats().cycles
        });
    }
}
