//! Criterion harness for Table 2's comparison: SlowSim (memoization off)
//! vs FastSim (memoization on) over representative workloads. The ratio of
//! the two group medians is the memoization speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastsim_core::{Mode, Simulator};
use fastsim_workloads::by_name;
use std::time::Duration;

const INSTS: u64 = 200_000;
const KERNELS: [&str; 6] = ["go", "compress", "li", "ijpeg", "mgrid", "applu"];

fn bench_memoization(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_memoization");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for name in KERNELS {
        let w = by_name(name).expect("kernel exists");
        let program = w.program_for_insts(INSTS);
        group.bench_with_input(BenchmarkId::new("slowsim", name), &program, |b, p| {
            b.iter(|| {
                let mut sim = Simulator::new(p, Mode::Slow).unwrap();
                sim.run_to_completion().unwrap();
                sim.stats().cycles
            })
        });
        group.bench_with_input(BenchmarkId::new("fastsim", name), &program, |b, p| {
            b.iter(|| {
                let mut sim = Simulator::new(p, Mode::fast()).unwrap();
                sim.run_to_completion().unwrap();
                sim.stats().cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memoization);
criterion_main!(benches);
