//! Self-timed harness for Table 2's comparison: SlowSim (memoization off)
//! vs FastSim (memoization on) over representative workloads. The ratio of
//! the two group medians is the memoization speedup. (Formerly a Criterion
//! harness; rewritten on `fastsim_bench::timing` so `cargo bench` needs no
//! crates.io dependencies.)

use fastsim_bench::timing;
use fastsim_core::{Mode, Simulator};
use fastsim_workloads::by_name;

const INSTS: u64 = 200_000;
const SAMPLES: usize = 10;
const KERNELS: [&str; 6] = ["go", "compress", "li", "ijpeg", "mgrid", "applu"];

fn main() {
    timing::banner("table2_memoization");
    for name in KERNELS {
        let w = by_name(name).expect("kernel exists");
        let program = w.program_for_insts(INSTS);
        let slow = timing::measure(&format!("slowsim/{name}"), SAMPLES, || {
            let mut sim = Simulator::new(&program, Mode::Slow).unwrap();
            sim.run_to_completion().unwrap();
            sim.stats().cycles
        });
        let fast = timing::measure(&format!("fastsim/{name}"), SAMPLES, || {
            let mut sim = Simulator::new(&program, Mode::fast()).unwrap();
            sim.run_to_completion().unwrap();
            sim.stats().cycles
        });
        println!(
            "{:<44} {:>12.2}x",
            format!("speedup/{name}"),
            slow.median.as_secs_f64() / fast.median.as_secs_f64().max(1e-12)
        );
    }
}
