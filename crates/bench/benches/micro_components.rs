//! Self-timed micro-benchmarks for the individual substrates: the
//! configuration codec (encode + decode), the cache simulator's
//! issue/poll path, and the functional emulator's stepping rate. These
//! bound the per-action costs behind the table results. (Formerly a
//! Criterion harness; rewritten on `fastsim_bench::timing` so `cargo
//! bench` needs no crates.io dependencies.)

use fastsim_bench::timing;
use fastsim_emu::FuncEmulator;
use fastsim_isa::{Asm, Reg};
use fastsim_mem::{CacheConfig, CacheSim, PollResult};
use fastsim_uarch::{decode_config, encode_config, FetchPc, IqEntry, IqState, PipelineState};
use std::hint::black_box;
use std::rc::Rc;

const SAMPLES: usize = 30;

fn config_codec() {
    let mut a = Asm::with_base(0x1000);
    for i in 0..32 {
        a.addi(Reg::new(1 + (i % 8) as u8), Reg::R0, i);
    }
    a.halt();
    let prog = a.assemble().unwrap().predecode().unwrap();
    // A full 32-entry pipeline state.
    let mut st = PipelineState::at_entry(0x1000);
    for i in 0..32u32 {
        st.iq.push(IqEntry {
            addr: 0x1000 + i * 4,
            state: if i % 3 == 0 { IqState::Queued } else { IqState::Exec { left: 1 + i % 30 } },
            taken: false,
            mispredicted: false,
            target: 0,
        });
    }
    st.fetch = FetchPc::At(0x1000 + 32 * 4);
    let bytes = encode_config(&st, &prog);
    timing::measure_per_iter("micro_codec/encode_32_entries", SAMPLES, 10_000, || {
        encode_config(black_box(&st), &prog)
    });
    timing::measure_per_iter("micro_codec/decode_32_entries", SAMPLES, 10_000, || {
        decode_config(black_box(&bytes), &prog).unwrap()
    });
}

fn cache_path() {
    let mut sim = CacheSim::new(CacheConfig::table1());
    let mut now = 0u64;
    let mut id = 0u64;
    // Warm one line.
    let w = sim.issue_load(id, 0x8000, 4, now) as u64;
    now += w;
    while sim.poll_load(id, now) != PollResult::Ready {
        now += 1;
    }
    id += 1;
    timing::measure_per_iter("micro_cache/issue_poll_hit_loop", SAMPLES, 10_000, || {
        let interval = sim.issue_load(id, 0x8000, 4, now);
        now += interval as u64;
        assert_eq!(sim.poll_load(id, now), PollResult::Ready);
        id += 1;
        now += 1;
    });
}

fn emulator_rate() {
    let mut a = Asm::new();
    a.addi(Reg::R1, Reg::R0, 10_000);
    a.label("l");
    a.add(Reg::R2, Reg::R2, Reg::R1);
    a.xor(Reg::R3, Reg::R2, Reg::R1);
    a.subi(Reg::R1, Reg::R1, 1);
    a.bne(Reg::R1, Reg::R0, "l");
    a.halt();
    let image = a.assemble().unwrap();
    let prog = Rc::new(image.predecode().unwrap());
    timing::measure("micro_emulator/functional_40k_insts", 20, || {
        let mut e = FuncEmulator::new(prog.clone(), &image);
        e.run(u64::MAX);
        black_box(e.insts())
    });
}

fn main() {
    timing::banner("micro_components");
    config_codec();
    cache_path();
    emulator_rate();
}
