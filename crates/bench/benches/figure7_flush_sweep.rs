//! Self-timed harness for Figure 7: FastSim run time as the p-action cache
//! is limited with the flush-on-full policy, swept over a power-of-two
//! size ladder. (Formerly a Criterion harness; rewritten on
//! `fastsim_bench::timing` so `cargo bench` needs no crates.io
//! dependencies.)

use fastsim_bench::timing;
use fastsim_core::{Mode, Policy, Simulator};
use fastsim_workloads::by_name;

const INSTS: u64 = 200_000;
const SAMPLES: usize = 10;
const KERNELS: [&str; 3] = ["go", "ijpeg", "mgrid"];
const SIZES: [usize; 5] = [4 << 10, 16 << 10, 64 << 10, 256 << 10, usize::MAX];

fn main() {
    timing::banner("figure7_flush_sweep");
    for name in KERNELS {
        let w = by_name(name).expect("kernel exists");
        let program = w.program_for_insts(INSTS);
        for limit in SIZES {
            let label = if limit == usize::MAX {
                format!("{name}/unbounded")
            } else {
                format!("{name}/{}K", limit / 1024)
            };
            let mode = if limit == usize::MAX {
                Mode::fast()
            } else {
                Mode::Fast { policy: Policy::FlushOnFull { limit } }
            };
            timing::measure(&label, SAMPLES, || {
                let mut sim = Simulator::new(&program, mode).unwrap();
                sim.run_to_completion().unwrap();
                sim.stats().cycles
            });
        }
    }
}
