//! Criterion harness for Figure 7: FastSim run time as the p-action cache
//! is limited with the flush-on-full policy, swept over a power-of-two
//! size ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastsim_core::{Mode, Policy, Simulator};
use fastsim_workloads::by_name;
use std::time::Duration;

const INSTS: u64 = 200_000;
const KERNELS: [&str; 3] = ["go", "ijpeg", "mgrid"];
const SIZES: [usize; 5] = [4 << 10, 16 << 10, 64 << 10, 256 << 10, usize::MAX];

fn bench_flush_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_flush_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for name in KERNELS {
        let w = by_name(name).expect("kernel exists");
        let program = w.program_for_insts(INSTS);
        for limit in SIZES {
            let label = if limit == usize::MAX {
                format!("{name}/unbounded")
            } else {
                format!("{name}/{}K", limit / 1024)
            };
            let mode = if limit == usize::MAX {
                Mode::fast()
            } else {
                Mode::Fast { policy: Policy::FlushOnFull { limit } }
            };
            group.bench_with_input(BenchmarkId::from_parameter(label), &program, |b, p| {
                b.iter(|| {
                    let mut sim = Simulator::new(p, mode).unwrap();
                    sim.run_to_completion().unwrap();
                    sim.stats().cycles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flush_sweep);
criterion_main!(benches);
